// Package mpi is the in-process message-passing runtime that stands in for
// MPI in the paper's experiments. Each rank is a goroutine executing its own
// VM over a private address space; ranks exchange byte messages (payload +
// contamination header, paper Fig. 4) over per-pair ordered queues, and
// synchronize through rendezvous-based collectives.
//
// Failure semantics mirror a production MPI: when any rank dies — a trap, an
// application MPI_Abort, or a framework kill — the whole job aborts and every
// blocked communication call returns an error, so sibling ranks crash out
// instead of hanging (class C in the outcome taxonomy).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// ErrAborted is returned by communication calls after the job has aborted.
var ErrAborted = errors.New("mpi: job aborted")

// ErrTimeout is returned when a blocking call exceeds the job's wall-clock
// safety timeout (a defense against framework bugs, not an MPI feature).
var ErrTimeout = errors.New("mpi: wall-clock timeout")

// ErrDeserted is returned when a blocking call can provably never complete
// because a peer rank it depends on has finished its program and left the
// job: a collective round missing a departed rank will never fill, and a
// receive from a departed rank with an empty queue will never match. This is
// the deterministic, prompt form of the deadlock that the wall-clock timeout
// would otherwise catch 60 seconds later — a desynchronized collective
// schedule is a common consequence of an injected fault corrupting a trip
// count, so the fast path matters for campaign throughput. Like ErrTimeout
// and ErrAborted it surfaces in the VM as a peer-failure trap, so outcome
// classification is unchanged.
var ErrDeserted = errors.New("mpi: peer rank finished; operation can never complete")

type message struct {
	tag  int
	data []byte
}

// Job is one parallel run: size ranks, their mailboxes, and the shared
// collective state.
type Job struct {
	size    int
	timeout time.Duration

	// mail[dst][src] is the ordered queue of messages from src to dst.
	mail [][]chan message

	done   chan struct{}
	killMu sync.Mutex
	flag   vm.AbortFlag

	// Departure tracking: left[r] is set once rank r's goroutine has
	// returned cleanly and will never communicate again. leaveCh is closed
	// and replaced on every departure, waking blocked calls so they can
	// re-check whether their wait has become unsatisfiable.
	leaveMu sync.Mutex
	left    []bool
	nleft   int
	leaveCh chan struct{}

	coll coll
	eps  []Endpoint

	// World-restore bookkeeping for the snapshot-fork fast path. worldGen
	// names the WorldSnap the mail/pending state last equalled (0: state
	// is drained-empty or unknown), verified by comparing the sum of the
	// endpoints' op counters against worldOps: any Send/Recv since then
	// may have moved messages, so the state is no longer trusted and the
	// next Recycle/RestoreWorld falls back to the full drain+refill.
	worldGen uint64
	worldOps uint64

	// bufs is the wire-buffer freelist: receivers return fully consumed
	// message buffers here and senders draw from it, so steady-state
	// point-to-point traffic allocates no new buffers.
	bufs chan []byte
}

// defaultTimeout bounds blocking calls when the caller passes zero.
const defaultTimeout = 60 * time.Second

// NewJob creates a job with the given number of ranks. timeout bounds every
// blocking call; zero selects a generous default.
func NewJob(size int, timeout time.Duration) *Job {
	if size <= 0 {
		panic("mpi: job size must be positive")
	}
	if timeout == 0 {
		timeout = defaultTimeout
	}
	j := &Job{
		size:    size,
		timeout: timeout,
		mail:    make([][]chan message, size),
		done:    make(chan struct{}),
		left:    make([]bool, size),
		leaveCh: make(chan struct{}),
		bufs:    make(chan []byte, 256),
	}
	for dst := range j.mail {
		j.mail[dst] = make([]chan message, size)
		for src := range j.mail[dst] {
			j.mail[dst][src] = make(chan message, 1024)
		}
	}
	j.coll.size = size
	j.coll.done = j.done
	j.eps = make([]Endpoint, size)
	for r := range j.eps {
		j.eps[r] = Endpoint{job: j, rank: r, pending: make([][]message, size)}
	}
	return j
}

// Recycle prepares a completed job for another run of the same shape:
// mailboxes are drained, pending buffers emptied and collective state
// cleared, while the channels, endpoints and their timers survive. An
// aborted job gets a fresh done channel and a lowered abort flag — once
// every rank goroutine has exited there is nothing left to observe the old
// ones. It returns false — leaving the job untouched — when the shape or
// timeout differs; the caller must then build a fresh job. Only call
// between runs, with no rank goroutines alive.
func (j *Job) Recycle(size int, timeout time.Duration) bool {
	if timeout == 0 {
		timeout = defaultTimeout
	}
	if j.size != size || j.timeout != timeout {
		return false
	}
	if j.Aborted() {
		j.killMu.Lock()
		j.done = make(chan struct{})
		j.coll.done = j.done
		j.flag.Lower()
		j.killMu.Unlock()
	}
	j.leaveMu.Lock()
	if j.nleft > 0 {
		clear(j.left)
		j.nleft = 0
		j.leaveCh = make(chan struct{})
	}
	j.leaveMu.Unlock()
	// Skip the mail/pending drain when the world still equals the last
	// restored snapshot (no Send/Recv ran since): the next RestoreWorld of
	// the same snapshot is then a no-op, which is the common case when one
	// worker forks consecutive experiments from the same cut. Any op since
	// the restore invalidates the claim and the full drain runs.
	if j.worldGen == 0 || j.opsSum() != j.worldOps {
		j.drainWorld()
	}
	j.coll.mu.Lock()
	j.coll.cur = nil
	j.coll.mu.Unlock()
	return true
}

// opsSum totals the endpoints' Send/Recv counters. Only meaningful at
// quiescent points, with no rank goroutines alive.
func (j *Job) opsSum() uint64 {
	var n uint64
	for r := range j.eps {
		n += j.eps[r].ops
	}
	return n
}

// drainWorld empties every mailbox and pending buffer and marks the
// world state as no longer matching any snapshot.
func (j *Job) drainWorld() {
	for _, row := range j.mail {
		for _, ch := range row {
			for {
				select {
				case <-ch:
					continue
				default:
				}
				break
			}
		}
	}
	for r := range j.eps {
		e := &j.eps[r]
		for src := range e.pending {
			clear(e.pending[src])
			e.pending[src] = e.pending[src][:0]
		}
		e.ops = 0
	}
	j.worldGen = 0
	j.worldOps = 0
}

// ClearWorld guarantees an empty message-passing state before a
// non-forked run on a recycled job: a Recycle that kept snapshot state
// in place (see above) is followed by either RestoreWorld — forked runs —
// or ClearWorld. No-op when the world is already drained.
func (j *Job) ClearWorld() {
	if j.worldGen != 0 {
		j.drainWorld()
	}
}

// Size returns the number of ranks.
func (j *Job) Size() int { return j.size }

// Flag returns the job's abort flag, to be shared with every rank's VM.
func (j *Job) Flag() *vm.AbortFlag { return &j.flag }

// Kill aborts the job: the abort flag is raised and all blocked
// communication calls return ErrAborted. Idempotent.
func (j *Job) Kill() {
	j.killMu.Lock()
	defer j.killMu.Unlock()
	select {
	case <-j.done:
	default:
		j.flag.Raise()
		close(j.done)
	}
}

// Done returns the channel closed when the job aborts, for callers that
// must not block forever on a job that died. Capture it once per run:
// Recycle replaces the channel after an aborted run.
func (j *Job) Done() <-chan struct{} {
	j.killMu.Lock()
	defer j.killMu.Unlock()
	return j.done
}

// Leave records that rank's goroutine has returned cleanly and will never
// communicate again, and wakes every blocked call so it can re-check for
// desertion: once a rank has left, no collective round it is absent from
// can ever complete, and no new message from it can ever arrive. The caller
// must guarantee all of rank's sends happened before Leave (returning from
// the rank's program body does). Idempotent.
func (j *Job) Leave(rank int) {
	if rank < 0 || rank >= j.size {
		panic(fmt.Sprintf("mpi: leave of invalid rank %d", rank))
	}
	j.leaveMu.Lock()
	if !j.left[rank] {
		j.left[rank] = true
		j.nleft++
		close(j.leaveCh)
		j.leaveCh = make(chan struct{})
	}
	j.leaveMu.Unlock()
}

// leaveWatch returns the channel closed at the next departure. Capture it
// before checking hasLeft: a departure between the check and the blocking
// wait then still wakes the waiter.
func (j *Job) leaveWatch() <-chan struct{} {
	j.leaveMu.Lock()
	ch := j.leaveCh
	j.leaveMu.Unlock()
	return ch
}

// hasLeft reports whether rank has departed.
func (j *Job) hasLeft(rank int) bool {
	j.leaveMu.Lock()
	l := j.left[rank]
	j.leaveMu.Unlock()
	return l
}

// Aborted reports whether the job has been killed.
func (j *Job) Aborted() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Endpoint returns rank r's endpoint. Each endpoint must be used by a
// single goroutine.
func (j *Job) Endpoint(r int) *Endpoint {
	if r < 0 || r >= j.size {
		panic(fmt.Sprintf("mpi: rank %d out of range", r))
	}
	return &j.eps[r]
}

// Endpoint is one rank's connection to the job. It implements
// vm.MPIEndpoint.
type Endpoint struct {
	job  *Job
	rank int
	// pending[src] buffers messages received from src while looking for a
	// specific tag (tag matching with per-pair ordering).
	pending [][]message
	// tmr is the reusable wall-clock safety timer armed around blocking
	// waits. One timer per endpoint instead of one per call keeps the
	// communication-heavy experiment loop allocation-free.
	tmr *time.Timer
	// ops counts Send/Recv calls on this endpoint. Written only by the
	// rank's own goroutine, read only at quiescent points (between runs);
	// the job sums it to detect whether point-to-point state may have
	// changed since a world restore.
	ops uint64
}

// armTimer returns the endpoint's timeout timer, armed with the job
// timeout. Every armTimer must be paired with disarmTimer before the next
// blocking call.
func (e *Endpoint) armTimer() *time.Timer {
	if e.tmr == nil {
		e.tmr = time.NewTimer(e.job.timeout)
	} else {
		e.tmr.Reset(e.job.timeout)
	}
	return e.tmr
}

// disarmTimer stops the armed timer, draining a concurrent expiry so the
// next Reset starts from a clean channel.
func (e *Endpoint) disarmTimer() {
	if !e.tmr.Stop() {
		select {
		case <-e.tmr.C:
		default:
		}
	}
}

var _ vm.MPIEndpoint = (*Endpoint)(nil)

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the job size.
func (e *Endpoint) Size() int { return e.job.size }

// Send enqueues msg for rank dst. It blocks only when dst's queue is full.
func (e *Endpoint) Send(dst, tag int, msg []byte) error {
	if dst < 0 || dst >= e.job.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	e.ops++
	// Fast path: queue has room (the common case with deep mailboxes).
	select {
	case e.job.mail[dst][e.rank] <- message{tag: tag, data: msg}:
		return nil
	default:
	}
	t := e.armTimer()
	defer e.disarmTimer()
	for {
		// A departed receiver will never drain its queue; a blocked send to
		// it (full queue) can therefore never complete.
		lw := e.job.leaveWatch()
		if e.job.hasLeft(dst) {
			return ErrDeserted
		}
		select {
		case e.job.mail[dst][e.rank] <- message{tag: tag, data: msg}:
			return nil
		case <-e.job.done:
			return ErrAborted
		case <-t.C:
			return ErrTimeout
		case <-lw:
		}
	}
}

// Recv blocks until a message with the given tag arrives from src.
// Messages from src with other tags are buffered and matched by later
// receives, preserving per-(pair, tag) ordering.
func (e *Endpoint) Recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= e.job.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	e.ops++
	// Check messages already set aside.
	for i, m := range e.pending[src] {
		if m.tag == tag {
			e.pending[src] = append(e.pending[src][:i], e.pending[src][i+1:]...)
			return m.data, nil
		}
	}
	// Fast path: drain whatever is already queued without arming the timer.
	for {
		select {
		case m := <-e.job.mail[e.rank][src]:
			if m.tag == tag {
				return m.data, nil
			}
			e.pending[src] = append(e.pending[src], m)
			continue
		default:
		}
		break
	}
	t := e.armTimer()
	defer e.disarmTimer()
	for {
		// Capture the watch before checking departure: a Leave between the
		// check and the select then still wakes this waiter. All of src's
		// sends happen before its Leave, so once hasLeft is observed a final
		// non-blocking drain is authoritative — an empty queue stays empty.
		lw := e.job.leaveWatch()
		if e.job.hasLeft(src) {
			for {
				select {
				case m := <-e.job.mail[e.rank][src]:
					if m.tag == tag {
						return m.data, nil
					}
					e.pending[src] = append(e.pending[src], m)
					continue
				default:
				}
				break
			}
			return nil, ErrDeserted
		}
		select {
		case m := <-e.job.mail[e.rank][src]:
			if m.tag == tag {
				return m.data, nil
			}
			e.pending[src] = append(e.pending[src], m)
		case <-e.job.done:
			return nil, ErrAborted
		case <-t.C:
			return nil, ErrTimeout
		case <-lw:
			// A rank departed; loop to re-check whether it was src.
		}
	}
}

// Barrier blocks until every rank has entered it.
func (e *Endpoint) Barrier() error {
	_, err := e.job.coll.join(e, contribution{})
	return err
}

// Allreduce combines the primary and pristine word vectors of all ranks.
func (e *Endpoint) Allreduce(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error) {
	res, err := e.job.coll.join(e, contribution{
		kind: collAllreduce, prim: prim, prist: prist, op: op, isFloat: isFloat,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.prim, res.prist, nil
}

// Bcast distributes root's message; non-root ranks pass nil.
func (e *Endpoint) Bcast(root int, msg []byte) ([]byte, error) {
	if root < 0 || root >= e.job.size {
		return nil, fmt.Errorf("mpi: bcast root %d invalid", root)
	}
	isRoot := e.rank == root
	res, err := e.job.coll.join(e, contribution{
		kind: collBcast, bcast: msg, isRoot: isRoot,
	})
	if err != nil {
		return nil, err
	}
	return res.bcast, nil
}

// Abort kills the whole job (MPI_Abort).
func (e *Endpoint) Abort(code int64) { e.job.Kill() }

// GetBuf returns a recycled wire buffer (nil when none is available). The
// VM's message layer uses this (through an optional interface) to keep
// steady-state traffic allocation-free.
func (e *Endpoint) GetBuf() []byte {
	select {
	case b := <-e.job.bufs:
		return b
	default:
		return nil
	}
}

// PutBuf returns a fully consumed wire buffer to the freelist. Only the
// sole consumer of a buffer may return it — recycling a buffer shared with
// any other reader would corrupt a future message.
func (e *Endpoint) PutBuf(b []byte) {
	select {
	case e.job.bufs <- b:
	default:
	}
}
