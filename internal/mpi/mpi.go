// Package mpi is the in-process message-passing runtime that stands in for
// MPI in the paper's experiments. Each rank is a goroutine executing its own
// VM over a private address space; ranks exchange byte messages (payload +
// contamination header, paper Fig. 4) over per-pair ordered queues, and
// synchronize through rendezvous-based collectives.
//
// Failure semantics mirror a production MPI: when any rank dies — a trap, an
// application MPI_Abort, or a framework kill — the whole job aborts and every
// blocked communication call returns an error, so sibling ranks crash out
// instead of hanging (class C in the outcome taxonomy).
package mpi

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ir"
	"repro/internal/vm"
)

// ErrAborted is returned by communication calls after the job has aborted.
var ErrAborted = errors.New("mpi: job aborted")

// ErrTimeout is returned when a blocking call exceeds the job's wall-clock
// safety timeout (a defense against framework bugs, not an MPI feature).
var ErrTimeout = errors.New("mpi: wall-clock timeout")

type message struct {
	tag  int
	data []byte
}

// Job is one parallel run: size ranks, their mailboxes, and the shared
// collective state.
type Job struct {
	size    int
	timeout time.Duration

	// mail[dst][src] is the ordered queue of messages from src to dst.
	mail [][]chan message

	done     chan struct{}
	killOnce sync.Once
	flag     vm.AbortFlag

	coll coll
}

// NewJob creates a job with the given number of ranks. timeout bounds every
// blocking call; zero selects a generous default.
func NewJob(size int, timeout time.Duration) *Job {
	if size <= 0 {
		panic("mpi: job size must be positive")
	}
	if timeout == 0 {
		timeout = 60 * time.Second
	}
	j := &Job{
		size:    size,
		timeout: timeout,
		mail:    make([][]chan message, size),
		done:    make(chan struct{}),
	}
	for dst := range j.mail {
		j.mail[dst] = make([]chan message, size)
		for src := range j.mail[dst] {
			j.mail[dst][src] = make(chan message, 1024)
		}
	}
	j.coll.size = size
	j.coll.done = j.done
	return j
}

// Size returns the number of ranks.
func (j *Job) Size() int { return j.size }

// Flag returns the job's abort flag, to be shared with every rank's VM.
func (j *Job) Flag() *vm.AbortFlag { return &j.flag }

// Kill aborts the job: the abort flag is raised and all blocked
// communication calls return ErrAborted. Idempotent.
func (j *Job) Kill() {
	j.killOnce.Do(func() {
		j.flag.Raise()
		close(j.done)
	})
}

// Aborted reports whether the job has been killed.
func (j *Job) Aborted() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// Endpoint returns rank r's endpoint. Each endpoint must be used by a
// single goroutine.
func (j *Job) Endpoint(r int) *Endpoint {
	if r < 0 || r >= j.size {
		panic(fmt.Sprintf("mpi: rank %d out of range", r))
	}
	return &Endpoint{job: j, rank: r, pending: make([][]message, j.size)}
}

// Endpoint is one rank's connection to the job. It implements
// vm.MPIEndpoint.
type Endpoint struct {
	job  *Job
	rank int
	// pending[src] buffers messages received from src while looking for a
	// specific tag (tag matching with per-pair ordering).
	pending [][]message
}

var _ vm.MPIEndpoint = (*Endpoint)(nil)

// Rank returns this endpoint's rank.
func (e *Endpoint) Rank() int { return e.rank }

// Size returns the job size.
func (e *Endpoint) Size() int { return e.job.size }

// Send enqueues msg for rank dst. It blocks only when dst's queue is full.
func (e *Endpoint) Send(dst, tag int, msg []byte) error {
	if dst < 0 || dst >= e.job.size {
		return fmt.Errorf("mpi: send to invalid rank %d", dst)
	}
	t := time.NewTimer(e.job.timeout)
	defer t.Stop()
	select {
	case e.job.mail[dst][e.rank] <- message{tag: tag, data: msg}:
		return nil
	case <-e.job.done:
		return ErrAborted
	case <-t.C:
		return ErrTimeout
	}
}

// Recv blocks until a message with the given tag arrives from src.
// Messages from src with other tags are buffered and matched by later
// receives, preserving per-(pair, tag) ordering.
func (e *Endpoint) Recv(src, tag int) ([]byte, error) {
	if src < 0 || src >= e.job.size {
		return nil, fmt.Errorf("mpi: recv from invalid rank %d", src)
	}
	// Check messages already set aside.
	for i, m := range e.pending[src] {
		if m.tag == tag {
			e.pending[src] = append(e.pending[src][:i], e.pending[src][i+1:]...)
			return m.data, nil
		}
	}
	t := time.NewTimer(e.job.timeout)
	defer t.Stop()
	for {
		select {
		case m := <-e.job.mail[e.rank][src]:
			if m.tag == tag {
				return m.data, nil
			}
			e.pending[src] = append(e.pending[src], m)
		case <-e.job.done:
			return nil, ErrAborted
		case <-t.C:
			return nil, ErrTimeout
		}
	}
}

// Barrier blocks until every rank has entered it.
func (e *Endpoint) Barrier() error {
	_, err := e.job.coll.join(e.rank, e.job.timeout, contribution{})
	return err
}

// Allreduce combines the primary and pristine word vectors of all ranks.
func (e *Endpoint) Allreduce(prim, prist []uint64, op ir.ReduceOp, isFloat bool) ([]uint64, []uint64, error) {
	res, err := e.job.coll.join(e.rank, e.job.timeout, contribution{
		kind: collAllreduce, prim: prim, prist: prist, op: op, isFloat: isFloat,
	})
	if err != nil {
		return nil, nil, err
	}
	return res.prim, res.prist, nil
}

// Bcast distributes root's message; non-root ranks pass nil.
func (e *Endpoint) Bcast(root int, msg []byte) ([]byte, error) {
	if root < 0 || root >= e.job.size {
		return nil, fmt.Errorf("mpi: bcast root %d invalid", root)
	}
	isRoot := e.rank == root
	res, err := e.job.coll.join(e.rank, e.job.timeout, contribution{
		kind: collBcast, bcast: msg, isRoot: isRoot,
	})
	if err != nil {
		return nil, err
	}
	return res.bcast, nil
}

// Abort kills the whole job (MPI_Abort).
func (e *Endpoint) Abort(code int64) { e.job.Kill() }
