package mpi

import (
	"errors"
	"testing"
	"time"
)

// The desertion tests use generous job timeouts so a pass proves the
// deterministic fast path fired, not the wall-clock safety net.

func TestCollectiveDesertsWhenPeerLeaves(t *testing.T) {
	j := NewJob(2, 30*time.Second)
	errCh := make(chan error, 1)
	go func() {
		errCh <- j.Endpoint(1).Barrier()
	}()
	// Give rank 1 a moment to block in the round, then desert as rank 0.
	time.Sleep(10 * time.Millisecond)
	j.Leave(0)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeserted) {
			t.Fatalf("barrier after peer left: got %v, want ErrDeserted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("barrier did not desert; still blocked")
	}
}

func TestCollectiveDesertsWhenPeerAlreadyLeft(t *testing.T) {
	j := NewJob(2, 30*time.Second)
	j.Leave(0)
	if err := j.Endpoint(1).Barrier(); !errors.Is(err, ErrDeserted) {
		t.Fatalf("barrier with departed peer: got %v, want ErrDeserted", err)
	}
}

func TestRecvDrainsQueueThenDeserts(t *testing.T) {
	j := NewJob(2, 30*time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)
	if err := e0.Send(1, 7, []byte("last words")); err != nil {
		t.Fatal(err)
	}
	j.Leave(0)
	// The queued message survives the departure and must still be delivered.
	got, err := e1.Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "last words" {
		t.Errorf("got %q", got)
	}
	// Nothing further can ever arrive.
	if _, err := e1.Recv(0, 7); !errors.Is(err, ErrDeserted) {
		t.Fatalf("recv from departed rank: got %v, want ErrDeserted", err)
	}
}

func TestRecvDesertsWhileBlocked(t *testing.T) {
	j := NewJob(2, 30*time.Second)
	errCh := make(chan error, 1)
	go func() {
		_, err := j.Endpoint(1).Recv(0, 7)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	j.Leave(0)
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeserted) {
			t.Fatalf("recv after peer left: got %v, want ErrDeserted", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv did not desert; still blocked")
	}
}

func TestSendToDepartedRankDesertsWhenQueueFull(t *testing.T) {
	j := NewJob(2, 30*time.Second)
	e0 := j.Endpoint(0)
	// Fill rank 1's queue from rank 0; the next send must block.
	for i := 0; i < cap(j.mail[1][0]); i++ {
		if err := e0.Send(1, 1, nil); err != nil {
			t.Fatal(err)
		}
	}
	j.Leave(1)
	if err := e0.Send(1, 1, nil); !errors.Is(err, ErrDeserted) {
		t.Fatalf("send to departed rank with full queue: got %v, want ErrDeserted", err)
	}
}

func TestRecycleClearsDepartures(t *testing.T) {
	j := NewJob(2, 50*time.Millisecond)
	j.Leave(0)
	if err := j.Endpoint(1).Barrier(); !errors.Is(err, ErrDeserted) {
		t.Fatalf("pre-recycle barrier: got %v, want ErrDeserted", err)
	}
	if !j.Recycle(2, 50*time.Millisecond) {
		t.Fatal("recycle refused a same-shape job")
	}
	// With the departure cleared, a lone barrier waits out the (short)
	// safety timeout instead of deserting immediately.
	if err := j.Endpoint(1).Barrier(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("post-recycle barrier: got %v, want ErrTimeout", err)
	}
}

func TestLeaveIsIdempotentAndDoesNotAbort(t *testing.T) {
	j := NewJob(2, time.Second)
	j.Leave(0)
	j.Leave(0)
	if j.Aborted() {
		t.Fatal("Leave must not abort the job")
	}
	if !j.hasLeft(0) || j.hasLeft(1) {
		t.Fatal("departure flags wrong")
	}
}
