package mpi

import (
	"bytes"
	"testing"
	"time"
)

// TestWorldSnapshotRoundTrip covers the in-flight-message case: messages
// queued in the mail channels and set aside in a pending buffer at the cut
// must survive snapshot → consume/mutate → restore, repeatedly, with no
// aliasing between the snapshot and live buffers.
func TestWorldSnapshotRoundTrip(t *testing.T) {
	j := NewJob(2, 5*time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)

	// Three in-flight messages from rank 0: tags 7 and 8 queued, and tag 9
	// forced into rank 1's pending buffer by a tag-8 receive.
	for _, m := range []struct {
		tag  int
		body string
	}{{9, "pending-nine"}, {7, "queued-seven"}, {8, "queued-eight"}} {
		if err := e0.Send(1, m.tag, []byte(m.body)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := e1.Recv(0, 8)
	if err != nil || string(got) != "queued-eight" {
		t.Fatalf("recv tag 8 = %q, %v", got, err)
	}
	// Now: pending[0] holds tag 9, mail holds tag 7.

	snap := j.SnapshotWorld(nil)

	drain := func(label string) {
		t.Helper()
		for _, want := range []struct {
			tag  int
			body string
		}{{7, "queued-seven"}, {9, "pending-nine"}} {
			b, err := e1.Recv(0, want.tag)
			if err != nil {
				t.Fatalf("%s: recv tag %d: %v", label, want.tag, err)
			}
			if !bytes.Equal(b, []byte(want.body)) {
				t.Fatalf("%s: recv tag %d = %q, want %q", label, want.tag, b, want.body)
			}
			// Scribble over the received buffer: a restore that aliased
			// snapshot bytes would replay this garbage.
			for i := range b {
				b[i] = 0xFF
			}
		}
	}

	drain("first consume")
	for round := 0; round < 3; round++ {
		j.RestoreWorld(snap)
		drain("after restore")
	}

	// Restoring an empty-world snapshot onto a dirty world must clear it.
	j2 := NewJob(2, 100*time.Millisecond)
	if err := j2.Endpoint(0).Send(1, 3, []byte("dirty")); err != nil {
		t.Fatal(err)
	}
	emptySnap := NewJob(2, time.Second).SnapshotWorld(nil)
	j2.RestoreWorld(emptySnap)
	if b, err := j2.Endpoint(1).Recv(0, 3); err == nil {
		t.Fatalf("restore of an empty world left %q queued", b)
	}
}

// TestWorldSnapshotReuseBacking checks that snapshotting into an existing
// WorldSnap of the same shape reuses it and replaces stale contents.
func TestWorldSnapshotReuseBacking(t *testing.T) {
	j := NewJob(2, 5*time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)
	if err := e0.Send(1, 1, []byte("one")); err != nil {
		t.Fatal(err)
	}
	s := j.SnapshotWorld(nil)
	if _, err := e1.Recv(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := e0.Send(1, 2, []byte("two")); err != nil {
		t.Fatal(err)
	}
	// Re-capture into the same WorldSnap: the old tag-1 message must be gone.
	s = j.SnapshotWorld(s)
	j.RestoreWorld(s)
	if b, err := e1.Recv(0, 2); err != nil || string(b) != "two" {
		t.Fatalf("recv tag 2 = %q, %v", b, err)
	}
	j.RestoreWorld(s)
	if b, err := e1.Recv(0, 2); err != nil || string(b) != "two" {
		t.Fatalf("second restore: recv tag 2 = %q, %v", b, err)
	}
}

// TestRestoreWorldSizeMismatchPanics pins the shape guard.
func TestRestoreWorldSizeMismatchPanics(t *testing.T) {
	j := NewJob(2, time.Second)
	s := j.SnapshotWorld(nil)
	defer func() {
		if recover() == nil {
			t.Fatal("RestoreWorld across job sizes did not panic")
		}
	}()
	NewJob(3, time.Second).RestoreWorld(s)
}
