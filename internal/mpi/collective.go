package mpi

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ir"
)

// Collectives use a rendezvous protocol: the first arriving rank of a round
// creates the round, each rank deposits its contribution, and the last
// arrival computes the result and publishes it by closing the round's ready
// channel. SPMD programs enter collectives in lockstep, so one active round
// per job suffices; a fresh round starts as soon as the previous one is
// complete, even while earlier waiters are still reading their result.

type collKind int

const (
	collBarrier collKind = iota
	collAllreduce
	collBcast
)

type contribution struct {
	kind    collKind
	prim    []uint64
	prist   []uint64
	op      ir.ReduceOp
	isFloat bool
	bcast   []byte
	isRoot  bool
}

type result struct {
	prim  []uint64
	prist []uint64
	bcast []byte
}

type round struct {
	arrived int
	contrib []contribution
	present []bool
	ready   chan struct{}
	res     result
	err     error
}

type coll struct {
	mu   sync.Mutex
	size int
	done chan struct{}
	cur  *round
}

func (c *coll) join(rank int, timeout time.Duration, cb contribution) (result, error) {
	c.mu.Lock()
	if c.cur == nil {
		c.cur = &round{
			contrib: make([]contribution, c.size),
			present: make([]bool, c.size),
			ready:   make(chan struct{}),
		}
	}
	r := c.cur
	if r.present[rank] {
		c.mu.Unlock()
		return result{}, fmt.Errorf("mpi: rank %d entered the same collective round twice", rank)
	}
	r.present[rank] = true
	r.contrib[rank] = cb
	r.arrived++
	if r.arrived == c.size {
		r.res, r.err = combine(r.contrib)
		close(r.ready)
		c.cur = nil
	}
	c.mu.Unlock()

	t := time.NewTimer(timeout)
	defer t.Stop()
	select {
	case <-r.ready:
		return r.res, r.err
	case <-c.done:
		return result{}, ErrAborted
	case <-t.C:
		return result{}, ErrTimeout
	}
}

// combine validates that all ranks entered the same collective with
// compatible shapes and computes the result. Mismatches — which arise when
// a corrupted value changes a count or a code path — are job-fatal errors,
// as they would be under a real MPI.
func combine(contribs []contribution) (result, error) {
	kind := contribs[0].kind
	for r, cb := range contribs {
		if cb.kind != kind {
			return result{}, fmt.Errorf("mpi: rank %d entered %v, rank 0 entered %v", r, cb.kind, kind)
		}
	}
	switch kind {
	case collBarrier:
		return result{}, nil
	case collBcast:
		var root *contribution
		for r := range contribs {
			if contribs[r].isRoot {
				if root != nil {
					return result{}, fmt.Errorf("mpi: multiple bcast roots")
				}
				root = &contribs[r]
			}
		}
		if root == nil {
			return result{}, fmt.Errorf("mpi: bcast without a root")
		}
		return result{bcast: root.bcast}, nil
	case collAllreduce:
		n := len(contribs[0].prim)
		op := contribs[0].op
		isFloat := contribs[0].isFloat
		for r, cb := range contribs {
			if len(cb.prim) != n || len(cb.prist) != n {
				return result{}, fmt.Errorf("mpi: rank %d allreduce count %d, rank 0 has %d", r, len(cb.prim), n)
			}
			if cb.op != op || cb.isFloat != isFloat {
				return result{}, fmt.Errorf("mpi: rank %d allreduce op mismatch", r)
			}
		}
		prim := make([]uint64, n)
		prist := make([]uint64, n)
		copy(prim, contribs[0].prim)
		copy(prist, contribs[0].prist)
		for _, cb := range contribs[1:] {
			for i := 0; i < n; i++ {
				prim[i] = reduceWord(prim[i], cb.prim[i], op, isFloat)
				prist[i] = reduceWord(prist[i], cb.prist[i], op, isFloat)
			}
		}
		return result{prim: prim, prist: prist}, nil
	}
	return result{}, fmt.Errorf("mpi: unknown collective kind %d", kind)
}

func reduceWord(a, b uint64, op ir.ReduceOp, isFloat bool) uint64 {
	if isFloat {
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var z float64
		switch op {
		case ir.ReduceSum:
			z = x + y
		case ir.ReduceMin:
			z = math.Min(x, y)
		case ir.ReduceMax:
			z = math.Max(x, y)
		default:
			z = x + y
		}
		return math.Float64bits(z)
	}
	x, y := int64(a), int64(b)
	var z int64
	switch op {
	case ir.ReduceSum:
		z = x + y
	case ir.ReduceMin:
		z = x
		if y < x {
			z = y
		}
	case ir.ReduceMax:
		z = x
		if y > x {
			z = y
		}
	default:
		z = x + y
	}
	return uint64(z)
}

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "barrier"
	case collAllreduce:
		return "allreduce"
	case collBcast:
		return "bcast"
	}
	return "collective?"
}
