package mpi

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/ir"
)

// Collectives use a rendezvous protocol: the first arriving rank of a round
// creates the round, each rank deposits its contribution, and the last
// arrival computes the result and publishes it by handing one token per
// waiter through the round's ready channel (a send happens-before the
// matching receive, so the result is visible). SPMD programs enter
// collectives in lockstep, so one active round per job suffices; a fresh
// round starts as soon as the previous one is complete, even while earlier
// waiters are still reading their result.

type collKind int

const (
	collBarrier collKind = iota
	collAllreduce
	collBcast
)

type contribution struct {
	kind    collKind
	prim    []uint64
	prist   []uint64
	op      ir.ReduceOp
	isFloat bool
	bcast   []byte
	isRoot  bool
}

type result struct {
	prim  []uint64
	prist []uint64
	bcast []byte
}

type round struct {
	arrived int
	// readers counts ranks that have yet to read the published result; the
	// last one returns the round to the freelist.
	readers atomic.Int32
	contrib []contribution
	present []bool
	// ready carries one token per waiter (capacity size-1). A recycled
	// round's channel is empty — every waiter of the previous use consumed
	// its token, or the round leaked — so the channel itself is reused.
	ready chan struct{}
	res   result
	err   error
	// resP and resS back allreduce results across recycles. Safe to reuse:
	// combine (the only writer) runs at the last arrival of a round, which
	// cannot happen while any rank is still reading the previous result —
	// that rank has not entered the new round yet.
	resP, resS []uint64
}

type coll struct {
	mu   sync.Mutex
	size int
	done chan struct{}
	cur  *round
	// free is a one-slot round freelist. A round is recycled only after
	// every rank has read its result; rounds abandoned by aborting ranks
	// never reach that count and simply fall to the garbage collector.
	free *round
}

func (c *coll) newRound() *round {
	r := c.free
	if r != nil {
		c.free = nil
		r.arrived = 0
		clear(r.contrib)
		clear(r.present)
		r.res, r.err = result{}, nil
	} else {
		r = &round{
			contrib: make([]contribution, c.size),
			present: make([]bool, c.size),
			ready:   make(chan struct{}, c.size-1),
		}
	}
	r.readers.Store(int32(c.size))
	return r
}

// release is called by a rank after it has read r.res/r.err.
func (c *coll) release(r *round) {
	if r.readers.Add(-1) == 0 {
		c.mu.Lock()
		if c.free == nil {
			c.free = r
		}
		c.mu.Unlock()
	}
}

func (c *coll) join(e *Endpoint, cb contribution) (result, error) {
	rank := e.rank
	c.mu.Lock()
	if c.cur == nil {
		c.cur = c.newRound()
	}
	r := c.cur
	if r.present[rank] {
		c.mu.Unlock()
		return result{}, fmt.Errorf("mpi: rank %d entered the same collective round twice", rank)
	}
	r.present[rank] = true
	r.contrib[rank] = cb
	r.arrived++
	if r.arrived == c.size {
		r.res, r.err = combine(r.contrib, r)
		for i := 1; i < c.size; i++ {
			r.ready <- struct{}{}
		}
		c.cur = nil
		c.mu.Unlock()
		// Last arrival: the round is complete, no wait needed.
		res, err := r.res, r.err
		c.release(r)
		return res, err
	}
	c.mu.Unlock()

	t := e.armTimer()
	defer e.disarmTimer()
	for {
		// Capture the watch before the doom check so a departure between the
		// check and the select still wakes this waiter.
		lw := e.job.leaveWatch()
		if c.doomed(e.job, r) {
			return result{}, ErrDeserted
		}
		select {
		case <-r.ready:
			res, err := r.res, r.err
			c.release(r)
			return res, err
		case <-c.done:
			return result{}, ErrAborted
		case <-t.C:
			return result{}, ErrTimeout
		case <-lw:
			// A rank departed; loop to re-check whether the round is doomed.
		}
	}
}

// doomed reports whether round r can never complete: a collective needs all
// ranks, so the round is dead as soon as any rank has left the job without
// having joined it. Ranks present in the round cannot leave while it is
// incomplete (join blocks them), so a departed-and-present rank implies the
// round already completed.
func (c *coll) doomed(j *Job, r *round) bool {
	j.leaveMu.Lock()
	defer j.leaveMu.Unlock()
	if j.nleft == 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.arrived == c.size {
		// Complete; the result token is (or will be) in r.ready.
		return false
	}
	for i, l := range j.left {
		if l && !r.present[i] {
			return true
		}
	}
	return false
}

// combine validates that all ranks entered the same collective with
// compatible shapes and computes the result. Mismatches — which arise when
// a corrupted value changes a count or a code path — are job-fatal errors,
// as they would be under a real MPI. Allreduce results are built in r's
// reusable backing; see the round field comments for why that is safe.
func combine(contribs []contribution, r *round) (result, error) {
	kind := contribs[0].kind
	for r, cb := range contribs {
		if cb.kind != kind {
			return result{}, fmt.Errorf("mpi: rank %d entered %v, rank 0 entered %v", r, cb.kind, kind)
		}
	}
	switch kind {
	case collBarrier:
		return result{}, nil
	case collBcast:
		var root *contribution
		for r := range contribs {
			if contribs[r].isRoot {
				if root != nil {
					return result{}, fmt.Errorf("mpi: multiple bcast roots")
				}
				root = &contribs[r]
			}
		}
		if root == nil {
			return result{}, fmt.Errorf("mpi: bcast without a root")
		}
		return result{bcast: root.bcast}, nil
	case collAllreduce:
		n := len(contribs[0].prim)
		op := contribs[0].op
		isFloat := contribs[0].isFloat
		for r, cb := range contribs {
			if len(cb.prim) != n || len(cb.prist) != n {
				return result{}, fmt.Errorf("mpi: rank %d allreduce count %d, rank 0 has %d", r, len(cb.prim), n)
			}
			if cb.op != op || cb.isFloat != isFloat {
				return result{}, fmt.Errorf("mpi: rank %d allreduce op mismatch", r)
			}
		}
		prim := append(r.resP[:0], contribs[0].prim...)
		prist := append(r.resS[:0], contribs[0].prist...)
		r.resP, r.resS = prim, prist
		for _, cb := range contribs[1:] {
			for i := 0; i < n; i++ {
				prim[i] = reduceWord(prim[i], cb.prim[i], op, isFloat)
				prist[i] = reduceWord(prist[i], cb.prist[i], op, isFloat)
			}
		}
		return result{prim: prim, prist: prist}, nil
	}
	return result{}, fmt.Errorf("mpi: unknown collective kind %d", kind)
}

func reduceWord(a, b uint64, op ir.ReduceOp, isFloat bool) uint64 {
	if isFloat {
		x, y := math.Float64frombits(a), math.Float64frombits(b)
		var z float64
		switch op {
		case ir.ReduceSum:
			z = x + y
		case ir.ReduceMin:
			z = math.Min(x, y)
		case ir.ReduceMax:
			z = math.Max(x, y)
		default:
			z = x + y
		}
		return math.Float64bits(z)
	}
	x, y := int64(a), int64(b)
	var z int64
	switch op {
	case ir.ReduceSum:
		z = x + y
	case ir.ReduceMin:
		z = x
		if y < x {
			z = y
		}
	case ir.ReduceMax:
		z = x
		if y > x {
			z = y
		}
	default:
		z = x + y
	}
	return uint64(z)
}

func (k collKind) String() string {
	switch k {
	case collBarrier:
		return "barrier"
	case collAllreduce:
		return "allreduce"
	case collBcast:
		return "bcast"
	}
	return "collective?"
}
