package mpi

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fpm"
	"repro/internal/ir"
)

func TestP2PSendRecv(t *testing.T) {
	j := NewJob(2, time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := e0.Send(1, 7, []byte("hello")); err != nil {
			t.Errorf("send: %v", err)
		}
	}()
	got, err := e1.Recv(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Errorf("got %q", got)
	}
	wg.Wait()
}

func TestTagMatchingPreservesOrder(t *testing.T) {
	j := NewJob(2, time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)
	msgs := []struct {
		tag int
		s   string
	}{{1, "a1"}, {2, "b1"}, {1, "a2"}, {2, "b2"}}
	for _, m := range msgs {
		if err := e0.Send(1, m.tag, []byte(m.s)); err != nil {
			t.Fatal(err)
		}
	}
	// Receive tag 2 first: tag-1 messages must be set aside, order kept.
	for _, want := range []string{"b1", "b2"} {
		got, err := e1.Recv(0, 2)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("tag2 got %q, want %q", got, want)
		}
	}
	for _, want := range []string{"a1", "a2"} {
		got, err := e1.Recv(0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != want {
			t.Errorf("tag1 got %q, want %q", got, want)
		}
	}
}

func TestRecvUnblocksOnKill(t *testing.T) {
	j := NewJob(2, time.Minute)
	e1 := j.Endpoint(1)
	errCh := make(chan error, 1)
	go func() {
		_, err := e1.Recv(0, 0)
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond)
	j.Kill()
	select {
	case err := <-errCh:
		if err != ErrAborted {
			t.Errorf("err = %v, want ErrAborted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("recv did not unblock")
	}
	if !j.Aborted() {
		t.Error("job not marked aborted")
	}
	if !j.Flag().Raised() {
		t.Error("abort flag not raised")
	}
	j.Kill() // idempotent
}

func TestRecvTimeout(t *testing.T) {
	j := NewJob(2, 20*time.Millisecond)
	e1 := j.Endpoint(1)
	if _, err := e1.Recv(0, 0); err != ErrTimeout {
		t.Errorf("err = %v, want ErrTimeout", err)
	}
}

func TestInvalidRanks(t *testing.T) {
	j := NewJob(2, time.Second)
	e0 := j.Endpoint(0)
	if err := e0.Send(5, 0, nil); err == nil {
		t.Error("send to invalid rank accepted")
	}
	if _, err := e0.Recv(-1, 0); err == nil {
		t.Error("recv from invalid rank accepted")
	}
	if _, err := e0.Bcast(9, nil); err == nil {
		t.Error("bcast with invalid root accepted")
	}
}

func TestBarrierAllRanks(t *testing.T) {
	const n = 8
	j := NewJob(n, time.Second)
	var wg sync.WaitGroup
	errs := make([]error, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := j.Endpoint(r)
			for round := 0; round < 10; round++ {
				if err := e.Barrier(); err != nil {
					errs[r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("rank %d: %v", r, err)
		}
	}
}

func TestAllreduceSumFloat(t *testing.T) {
	const n = 4
	j := NewJob(n, time.Second)
	var wg sync.WaitGroup
	results := make([][]uint64, n)
	prists := make([][]uint64, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := j.Endpoint(r)
			prim := []uint64{math.Float64bits(float64(r + 1))}
			// Rank 2's pristine contribution differs (its word was
			// contaminated locally).
			prist := []uint64{prim[0]}
			if r == 2 {
				prist[0] = math.Float64bits(10)
			}
			rp, rs, err := e.Allreduce(prim, prist, ir.ReduceSum, true)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = rp
			prists[r] = rs
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		if got := math.Float64frombits(results[r][0]); got != 10 { // 1+2+3+4
			t.Errorf("rank %d primary sum = %v, want 10", r, got)
		}
		if got := math.Float64frombits(prists[r][0]); got != 17 { // 1+2+10+4
			t.Errorf("rank %d pristine sum = %v, want 17", r, got)
		}
	}
}

func TestAllreduceMinMaxInt(t *testing.T) {
	const n = 3
	j := NewJob(n, time.Second)
	run := func(op ir.ReduceOp) []int64 {
		var wg sync.WaitGroup
		out := make([]int64, n)
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				e := j.Endpoint(r)
				v := []uint64{uint64(int64(r*10 - 5))} // -5, 5, 15
				rp, _, err := e.Allreduce(v, v, op, false)
				if err != nil {
					t.Errorf("rank %d: %v", r, err)
					return
				}
				out[r] = int64(rp[0])
			}(r)
		}
		wg.Wait()
		return out
	}
	for _, v := range run(ir.ReduceMin) {
		if v != -5 {
			t.Errorf("min = %d, want -5", v)
		}
	}
	for _, v := range run(ir.ReduceMax) {
		if v != 15 {
			t.Errorf("max = %d, want 15", v)
		}
	}
	for _, v := range run(ir.ReduceSum) {
		if v != 15 { // -5+5+15
			t.Errorf("sum = %d, want 15", v)
		}
	}
}

func TestAllreduceCountMismatchFailsJob(t *testing.T) {
	j := NewJob(2, time.Second)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := j.Endpoint(r)
			count := 1 + r // mismatched lengths
			v := make([]uint64, count)
			_, _, errs[r] = e.Allreduce(v, v, ir.ReduceSum, false)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err == nil {
			t.Errorf("rank %d: mismatched allreduce succeeded", r)
		}
	}
}

func TestBcast(t *testing.T) {
	const n = 4
	j := NewJob(n, time.Second)
	payload := fpm.EncodeMessage([]uint64{42, 43}, []fpm.MsgRecord{{Displacement: 1, Pristine: 99}})
	var wg sync.WaitGroup
	results := make([][]byte, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			e := j.Endpoint(r)
			var msg []byte
			if r == 2 {
				msg = payload
			}
			out, err := e.Bcast(2, msg)
			if err != nil {
				t.Errorf("rank %d: %v", r, err)
				return
			}
			results[r] = out
		}(r)
	}
	wg.Wait()
	for r := 0; r < n; r++ {
		pl, recs, err := fpm.DecodeMessage(results[r])
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
		if pl[0] != 42 || pl[1] != 43 || len(recs) != 1 || recs[0].Pristine != 99 {
			t.Errorf("rank %d got payload %v recs %v", r, pl, recs)
		}
	}
}

func TestMixedCollectiveKindsFailJob(t *testing.T) {
	j := NewJob(2, time.Second)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		errs[0] = j.Endpoint(0).Barrier()
	}()
	go func() {
		defer wg.Done()
		_, errs[1] = j.Endpoint(1).Bcast(1, []byte{1})
	}()
	wg.Wait()
	if errs[0] == nil || errs[1] == nil {
		t.Errorf("mixed collectives succeeded: %v", errs)
	}
}

func TestSendManyMessagesNoDeadlock(t *testing.T) {
	// More messages than the channel buffer, consumed concurrently.
	j := NewJob(2, 5*time.Second)
	e0, e1 := j.Endpoint(0), j.Endpoint(1)
	const total = 5000
	go func() {
		for i := 0; i < total; i++ {
			if err := e0.Send(1, 0, []byte{byte(i)}); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < total; i++ {
		m, err := e1.Recv(0, 0)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m[0] != byte(i) {
			t.Fatalf("message %d out of order: %d", i, m[0])
		}
	}
}
