package mpi

import "sync/atomic"

// World snapshot support for the snapshot-fork fast path. A multi-rank cut
// is taken while every rank of the job is parked at the same quiesce point
// (immediately after a collective round): the round is fully drained — the
// last arrival published the result, every waiter consumed it, c.cur is
// nil — so the only live message-passing state is the point-to-point mail
// queues and each endpoint's tag-matching pending buffers. Both are
// single-writer structures whose contents at the cut are a pure function of
// the program, which is what makes a restored world equal to a re-executed
// one.

// WorldSnap is a deep copy of a job's message-passing state at a quiesce
// cut. One snapshot can seed any number of restored runs.
type WorldSnap struct {
	size int
	// mail[dst][src] holds the queued messages in FIFO order.
	mail [][][]message
	// pending[rank][src] holds each endpoint's set-aside messages.
	pending [][][]message
	// gen is a process-unique capture identity; a job tracks the gen it
	// last restored so re-restoring the same snapshot with no intervening
	// Send/Recv is a no-op.
	gen uint64
}

// worldGenCounter hands out process-unique WorldSnap generations.
var worldGenCounter atomic.Uint64

// copyMsgs deep-copies messages (payload bytes included) into dst's backing.
func copyMsgs(dst []message, src []message) []message {
	dst = dst[:0]
	for _, m := range src {
		dst = append(dst, message{tag: m.tag, data: append([]byte(nil), m.data...)})
	}
	return dst
}

// SnapshotWorld captures the job's mail queues and pending buffers into s
// (reusing s's structure when possible; nil allocates). It must be called
// while every rank goroutine is parked — no concurrent endpoint use — and
// leaves the job state untouched.
func (j *Job) SnapshotWorld(s *WorldSnap) *WorldSnap {
	if s == nil {
		s = &WorldSnap{}
	}
	if s.size != j.size {
		s.size = j.size
		s.mail = make([][][]message, j.size)
		s.pending = make([][][]message, j.size)
		for r := 0; r < j.size; r++ {
			s.mail[r] = make([][]message, j.size)
			s.pending[r] = make([][]message, j.size)
		}
	}
	var scratch []message
	for dst := range j.mail {
		for src, ch := range j.mail[dst] {
			// Drain the channel to observe its FIFO contents, refill it with
			// the very same messages (live receive buffers keep their
			// identity), and deep-copy into the snapshot. Safe only because
			// every rank is parked.
			scratch = scratch[:0]
			for {
				select {
				case m := <-ch:
					scratch = append(scratch, m)
					continue
				default:
				}
				break
			}
			for _, m := range scratch {
				ch <- m
			}
			s.mail[dst][src] = copyMsgs(s.mail[dst][src], scratch)
		}
	}
	for r := range j.eps {
		e := &j.eps[r]
		for src := range e.pending {
			s.pending[r][src] = copyMsgs(s.pending[r][src], e.pending[src])
		}
	}
	s.gen = worldGenCounter.Add(1)
	return s
}

// RestoreWorld rewinds the job's message-passing state to the snapshot.
// Call it between runs on a job of the same shape with no rank goroutines
// alive (after Recycle). Message payloads are deep-copied out of the
// snapshot — restored runs hand receive buffers to the wire freelist, which
// must never alias snapshot state.
func (j *Job) RestoreWorld(s *WorldSnap) {
	if s.size != j.size {
		panic("mpi: RestoreWorld on a job of a different size")
	}
	// Fast path: the job still holds exactly this snapshot's state (last
	// restore was the same gen and no Send/Recv ran since, so nothing
	// moved — Recycle preserved it for this check). Nothing to do.
	if s.gen != 0 && j.worldGen == s.gen && j.opsSum() == j.worldOps {
		return
	}
	for dst := range j.mail {
		for src, ch := range j.mail[dst] {
			for {
				select {
				case <-ch:
					continue
				default:
				}
				break
			}
			for _, m := range s.mail[dst][src] {
				ch <- message{tag: m.tag, data: append([]byte(nil), m.data...)}
			}
		}
	}
	for r := range j.eps {
		e := &j.eps[r]
		for src := range e.pending {
			clear(e.pending[src])
			e.pending[src] = e.pending[src][:0]
			for _, m := range s.pending[r][src] {
				e.pending[src] = append(e.pending[src], message{tag: m.tag, data: append([]byte(nil), m.data...)})
			}
		}
		e.ops = 0
	}
	j.worldGen = s.gen
	j.worldOps = 0
}
