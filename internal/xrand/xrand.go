// Package xrand provides small, fast, deterministic pseudo-random number
// generators used throughout the fault-injection framework.
//
// Reproducibility is a hard requirement for fault-injection campaigns: a
// campaign seeded with the same value must select the same injection sites,
// the same target ranks, and the same bit positions on every run, on every
// platform. The generators here (SplitMix64 and xoshiro256**) are
// well-studied, allocation-free, and easy to split into independent streams,
// which the campaign harness uses to give every experiment its own
// uncorrelated generator.
package xrand

import "math"

// SplitMix64 is the 64-bit SplitMix generator of Steele, Lea and Flood.
// It is primarily used to seed xoshiro256** streams and to derive
// per-experiment sub-seeds from a campaign master seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Rand is a xoshiro256** generator. The zero value is not usable; construct
// with New or NewFromState.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, per the xoshiro
// authors' recommendation.
func New(seed uint64) *Rand {
	sm := NewSplitMix64(seed)
	var r Rand
	for i := range r.s {
		r.s[i] = sm.Next()
	}
	// xoshiro state must not be all zero; SplitMix64 cannot produce four
	// consecutive zeros, but guard anyway for safety.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split derives a new, statistically independent generator from r without
// disturbing r's own future output beyond consuming two values.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ rotl(r.Uint64(), 32))
}

// At returns the generator for position index of the stream family
// identified by seed. Unlike chained Split calls, At(seed, i) does not
// depend on any other position having been drawn first, so a checkpointed
// campaign can rebuild experiment i's generator directly — in any order,
// from any worker — and still reproduce the exact randomness an
// uninterrupted sequential run would have used.
func At(seed, index uint64) *Rand {
	sm := NewSplitMix64(seed)
	s0 := sm.Next()
	s1 := sm.Next()
	// Mix the index through its own SplitMix64 round so neighboring
	// indices land in uncorrelated states even under similar seeds.
	ix := NewSplitMix64(index ^ rotl(s0, 17))
	return New(ix.Next() ^ rotl(s1, 32))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Uint64n returns a uniformly distributed value in [0, n). It panics if
// n == 0. Lemire's multiply-shift rejection method avoids modulo bias.
func (r *Rand) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top of the range.
	max := ^uint64(0) - ^uint64(0)%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Intn returns a uniformly distributed value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int63 returns a non-negative int64.
func (r *Rand) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a normally distributed value (mean 0, stddev 1) using
// the Marsaglia polar method.
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
