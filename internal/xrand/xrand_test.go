package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for SplitMix64 with seed 0 (from the public-domain
	// reference implementation by Sebastiano Vigna).
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	s := NewSplitMix64(0)
	for i, w := range want {
		if got := s.Next(); got != w {
			t.Errorf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestRandDeterministic(t *testing.T) {
	a := New(7)
	b := New(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sequence diverged at step %d", i)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	a := New(7)
	c := a.Split()
	// The split stream must differ from the parent's continuation.
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("split stream collided with parent %d/64 times", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	for _, n := range []uint64{1, 2, 3, 7, 10, 100, 1 << 20, 1<<63 + 3} {
		for i := 0; i < 200; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUint64nPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Uint64n(0)
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(99)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(17)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Errorf("shuffle changed element multiset: sum %d != %d", got, sum)
	}
}

func TestUint64nUniformityProperty(t *testing.T) {
	// Property: over many draws, each residue class of a small modulus is
	// hit roughly equally often.
	f := func(seed uint64) bool {
		r := New(seed)
		const n, draws = 8, 8000
		counts := make([]int, n)
		for i := 0; i < draws; i++ {
			counts[r.Uint64n(n)]++
		}
		for _, c := range counts {
			// Expected 1000 per bucket; allow wide tolerance.
			if c < 700 || c > 1300 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Float64()
	}
}

func TestAtIsPositionAddressable(t *testing.T) {
	// Drawing positions in any order, or skipping positions entirely, must
	// not change what any position yields.
	forward := make([]uint64, 10)
	for i := range forward {
		forward[i] = At(42, uint64(i)).Uint64()
	}
	for i := len(forward) - 1; i >= 0; i-- {
		if got := At(42, uint64(i)).Uint64(); got != forward[i] {
			t.Fatalf("At(42, %d) = %d out of order, want %d", i, got, forward[i])
		}
	}
	if got := At(42, 7).Uint64(); got != forward[7] {
		t.Fatalf("At(42, 7) standalone = %d, want %d", got, forward[7])
	}
}

func TestAtStreamsDiffer(t *testing.T) {
	seen := make(map[uint64]string)
	for seed := uint64(0); seed < 8; seed++ {
		for idx := uint64(0); idx < 64; idx++ {
			v := At(seed, idx).Uint64()
			if prev, dup := seen[v]; dup {
				t.Fatalf("At(%d, %d) collides with %s", seed, idx, prev)
			}
			seen[v] = "earlier stream"
		}
	}
}

func TestAtOutputLooksUniform(t *testing.T) {
	// First draws across indices should spread over the 64-bit range: check
	// the top byte hits many distinct values.
	buckets := make(map[byte]bool)
	for idx := uint64(0); idx < 256; idx++ {
		buckets[byte(At(9, idx).Uint64()>>56)] = true
	}
	if len(buckets) < 128 {
		t.Fatalf("top byte of At draws hit only %d/256 buckets", len(buckets))
	}
}
