package kernels

import (
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/vm"
)

// runKernels builds a program with body emitted into main and returns the
// outputs of a clean run.
func runKernels(t *testing.T, setup func(b *ir.Builder), body func(f *ir.FuncBuilder)) []float64 {
	t.Helper()
	b := ir.NewBuilder()
	setup(b)
	f := b.Func("main", 0, 0)
	body(f)
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(prog, vm.Config{})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	return v.Outputs()
}

func TestFillCopyDot(t *testing.T) {
	var a, c int64
	out := runKernels(t,
		func(b *ir.Builder) {
			a = b.Global("a", 4)
			c = b.Global("c", 4)
		},
		func(f *ir.FuncBuilder) {
			Fill(f, a, 4, 2.5)
			Copy(f, c, a, 4)
			f.OutputF(ir.R(Dot(f, a, c, 4))) // 4 * 2.5^2 = 25
			f.OutputF(ir.R(Norm2Sq(f, a, 4)))
		})
	if out[0] != 25 || out[1] != 25 {
		t.Errorf("outputs = %v, want [25 25]", out)
	}
}

func TestAxpyScaleSumAbs(t *testing.T) {
	var x, y int64
	out := runKernels(t,
		func(b *ir.Builder) {
			x = b.Global("x", 3)
			y = b.Global("y", 3)
			b.GlobalInitF("x", []float64{1, -2, 3})
			b.GlobalInitF("y", []float64{10, 10, 10})
		},
		func(f *ir.FuncBuilder) {
			alpha := f.CF(2)
			Axpy(f, alpha, x, y, 3) // y = [12, 6, 16]
			f.OutputF(ir.R(SumAbs(f, y, 3)))
			half := f.CF(0.5)
			Scale(f, half, y, 3) // y = [6, 3, 8]
			f.OutputF(ir.R(SumAbs(f, y, 3)))
		})
	if out[0] != 34 || out[1] != 17 {
		t.Errorf("outputs = %v, want [34 17]", out)
	}
}

func TestMatVec(t *testing.T) {
	var a, x, y int64
	out := runKernels(t,
		func(b *ir.Builder) {
			a = b.Global("A", 4)
			x = b.Global("x", 2)
			y = b.Global("y", 2)
			b.GlobalInitF("A", []float64{1, 2, 3, 4})
			b.GlobalInitF("x", []float64{5, 6})
		},
		func(f *ir.FuncBuilder) {
			MatVec(f, a, x, y, 2)
			f.OutputF(ir.R(f.Ld(ir.ImmI(y), ir.ImmI(0)))) // 1*5+2*6 = 17
			f.OutputF(ir.R(f.Ld(ir.ImmI(y), ir.ImmI(1)))) // 3*5+4*6 = 39
		})
	if out[0] != 17 || out[1] != 39 {
		t.Errorf("outputs = %v, want [17 39]", out)
	}
}

func TestFillI(t *testing.T) {
	var g int64
	out := runKernels(t,
		func(b *ir.Builder) { g = b.Global("g", 3) },
		func(f *ir.FuncBuilder) {
			FillI(f, g, 3, -7)
			f.OutputI(ir.R(f.Ld(ir.ImmI(g), ir.ImmI(2))))
		})
	if out[0] != -7 {
		t.Errorf("out = %v", out)
	}
}

func TestDefineLCGMatchesReference(t *testing.T) {
	b := ir.NewBuilder()
	state := b.Global("rng", 1)
	b.GlobalInit("rng", []uint64{12345})
	DefineLCG(b, "lcgu", state)
	f := b.Func("main", 0, 0)
	for k := 0; k < 4; k++ {
		u := f.NewReg()
		f.Call("lcgu", []ir.Reg{u})
		f.OutputF(ir.R(u))
	}
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(prog, vm.Config{})
	if err := v.Run(); err != nil {
		t.Fatal(err)
	}
	s := uint64(12345)
	for k, got := range v.Outputs() {
		s = s*6364136223846793005 + 1442695040888963407
		want := float64(s>>11) * 0x1p-53
		if got != want {
			t.Errorf("draw %d = %v, want %v", k, got, want)
		}
		if got < 0 || got >= 1 {
			t.Errorf("draw %d out of [0,1): %v", k, got)
		}
	}
}

func TestGlobalDotSingleRank(t *testing.T) {
	// Without an endpoint, allreduce traps; GlobalDot is exercised through
	// a single-rank job in core tests; here we check the emitted local
	// part by replacing the allreduce with a direct store path: run under
	// a 1-rank fake is unnecessary — use vm with nil MPI and expect the
	// invalid trap, documenting the contract.
	b := ir.NewBuilder()
	a := b.Global("a", 2)
	send := b.Global("send", 1)
	red := b.Global("red", 1)
	b.GlobalInitF("a", []float64{3, 4})
	f := b.Func("main", 0, 0)
	f.OutputF(ir.R(GlobalDot(f, a, a, 2, send, red)))
	f.Ret()
	prog := b.MustBuild()
	v := vm.New(prog, vm.Config{})
	err := v.Run()
	tr := vm.AsTrap(err)
	if tr == nil || tr.Kind != vm.TrapInvalid {
		t.Errorf("GlobalDot without MPI: err = %v, want invalid trap", err)
	}
	if math.IsNaN(0) { // keep math imported for future additions
		t.Fatal("unreachable")
	}
}
