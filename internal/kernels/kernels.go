// Package kernels provides reusable IR builder snippets for common numeric
// kernels — fills, copies, reductions, AXPY, dense mat-vec — so examples
// and new workloads compose from verified pieces instead of re-emitting
// loop scaffolding. Every kernel documents its exact floating-point
// evaluation order, which callers' pure-Go references must mirror.
package kernels

import "repro/internal/ir"

// Fill sets n words starting at base to the float constant v.
func Fill(f *ir.FuncBuilder, base int64, n int64, v float64) {
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.St(ir.ImmF(v), ir.ImmI(base), ir.R(i))
	})
}

// FillI sets n words starting at base to the integer constant v.
func FillI(f *ir.FuncBuilder, base int64, n int64, v int64) {
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.St(ir.ImmI(v), ir.ImmI(base), ir.R(i))
	})
}

// Copy copies n words from src to dst (non-overlapping).
func Copy(f *ir.FuncBuilder, dst, src int64, n int64) {
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.St(ir.R(f.Ld(ir.ImmI(src), ir.R(i))), ir.ImmI(dst), ir.R(i))
	})
}

// Dot returns sum_i a[i]*b[i], accumulating in ascending index order.
func Dot(f *ir.FuncBuilder, a, b int64, n int64) ir.Reg {
	acc := f.CF(0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		av := f.Ld(ir.ImmI(a), ir.R(i))
		bv := f.Ld(ir.ImmI(b), ir.R(i))
		f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.FMul(ir.R(av), ir.R(bv))))
	})
	return acc
}

// Norm2Sq returns sum_i a[i]^2 in ascending index order.
func Norm2Sq(f *ir.FuncBuilder, a int64, n int64) ir.Reg {
	return Dot(f, a, a, n)
}

// Axpy computes y[i] = y[i] + alpha*x[i] for i in [0,n).
func Axpy(f *ir.FuncBuilder, alpha ir.Reg, x, y int64, n int64) {
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		xv := f.Ld(ir.ImmI(x), ir.R(i))
		yv := f.Ld(ir.ImmI(y), ir.R(i))
		f.St(ir.R(f.FAdd(ir.R(yv), ir.R(f.FMul(ir.R(alpha), ir.R(xv))))), ir.ImmI(y), ir.R(i))
	})
}

// Scale computes x[i] = x[i] * s for i in [0,n).
func Scale(f *ir.FuncBuilder, s ir.Reg, x int64, n int64) {
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		xv := f.Ld(ir.ImmI(x), ir.R(i))
		f.St(ir.R(f.FMul(ir.R(xv), ir.R(s))), ir.ImmI(x), ir.R(i))
	})
}

// MatVec computes y = A·x for a dense row-major n×n matrix at a. Row sums
// accumulate in ascending column order.
func MatVec(f *ir.FuncBuilder, a, x, y int64, n int64) {
	row := f.NewReg()
	col := f.NewReg()
	f.For(row, ir.ImmI(0), ir.ImmI(n), func() {
		acc := f.CF(0)
		f.For(col, ir.ImmI(0), ir.ImmI(n), func() {
			idx := f.Add(ir.R(f.Mul(ir.R(row), ir.ImmI(n))), ir.R(col))
			av := f.Ld(ir.ImmI(a), ir.R(idx))
			xv := f.Ld(ir.ImmI(x), ir.R(col))
			f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.FMul(ir.R(av), ir.R(xv))))
		})
		f.St(ir.R(acc), ir.ImmI(y), ir.R(row))
	})
}

// SumAbs returns sum_i |a[i]| in ascending index order.
func SumAbs(f *ir.FuncBuilder, a int64, n int64) ir.Reg {
	acc := f.CF(0)
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.Fabs(ir.R(f.Ld(ir.ImmI(a), ir.R(i))))))
	})
	return acc
}

// GlobalDot computes the cross-rank dot product of two local vectors using
// the scratch words at sendSlot/redSlot for the allreduce.
func GlobalDot(f *ir.FuncBuilder, a, b, n, sendSlot, redSlot int64) ir.Reg {
	local := Dot(f, a, b, n)
	f.Store(ir.R(local), ir.ImmI(sendSlot))
	f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
	return f.Load(ir.ImmI(redSlot))
}

// DefineLCG adds a function named name to the builder that advances the
// LCG state word at stateAddr and returns a uniform [0,1) float. Matches
// the reference stream: s' = s*6364136223846793005 + 1442695040888963407;
// u = float64(s' >> 11) * 2^-53.
func DefineLCG(b *ir.Builder, name string, stateAddr int64) {
	f := b.Func(name, 0, 1)
	s := f.Load(ir.ImmI(stateAddr))
	ns := f.Add(ir.R(f.Mul(ir.R(s), ir.ImmI(6364136223846793005))), ir.ImmI(1442695040888963407))
	f.Store(ir.R(ns), ir.ImmI(stateAddr))
	mant := f.LShr(ir.R(ns), ir.ImmI(11))
	f.Ret(ir.R(f.FMul(ir.R(f.SIToFP(ir.R(mant))), ir.ImmF(0x1p-53))))
}
