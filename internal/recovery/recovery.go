// Package recovery implements the paper's motivating use case for fault
// propagation models (§5): deciding at runtime, when a fault is detected,
// whether to roll back to the previous checkpoint. The decision uses the
// application's FPS factor to estimate how many memory locations may have
// been corrupted during the detection window (Eq. 3); applications with low
// FPS can keep running when the estimate stays under a safe threshold,
// saving the re-execution cost.
//
// The package evaluates that policy over a campaign's experiments and
// accounts for the compute wasted under three strategies: the model-driven
// policy, always-roll-back, and never-roll-back.
package recovery

import (
	"fmt"
	"strings"

	"repro/internal/classify"
	"repro/internal/harness"
	"repro/internal/model"
)

// Config parameterizes the recovery policy.
type Config struct {
	// Model supplies the FPS factor.
	Model model.AppModel
	// ThresholdCML is the safe corrupted-location budget: estimated
	// contamination above this triggers a rollback.
	ThresholdCML float64
	// DetectionLatency is the delay between a fault's occurrence and its
	// detection, in seconds of virtual time.
	DetectionLatency float64
	// CheckpointInterval is the spacing of checkpoints, in seconds.
	CheckpointInterval float64
}

// Decision is the runtime choice for one detected fault.
type Decision struct {
	DetectTime     float64
	LastCheckpoint float64
	EstMaxCML      float64
	Rollback       bool
}

// Decide applies the policy to a fault that occurred at faultTime seconds.
func (c Config) Decide(faultTime float64) Decision {
	d := Decision{DetectTime: faultTime + c.DetectionLatency}
	if c.CheckpointInterval > 0 {
		n := int(d.DetectTime / c.CheckpointInterval)
		d.LastCheckpoint = float64(n) * c.CheckpointInterval
	}
	d.EstMaxCML = c.Model.MaxCML(d.LastCheckpoint, d.DetectTime)
	d.Rollback = d.EstMaxCML > c.ThresholdCML
	return d
}

// Report accounts for the wasted compute (re-executed virtual seconds) and
// escaped silent corruptions of each strategy over a campaign.
type Report struct {
	App         string
	Experiments int
	// Wasted virtual seconds per strategy.
	WastePolicy, WasteAlways, WasteNever float64
	// EscapedWO counts wrong-output runs the strategy failed to roll
	// back (silent data corruption reaching the user).
	EscapedPolicy, EscapedNever int
	// Rollbacks counts policy-triggered rollbacks; FalseRollbacks those
	// whose run would have produced correct output anyway.
	Rollbacks, FalseRollbacks int
}

// Evaluate replays the policy over a campaign's experiments.
//
// Accounting model, per experiment (run length T seconds, fault at tf):
//   - crash outcomes restart from the last checkpoint regardless of policy:
//     all strategies pay (crashTime − lastCheckpoint);
//   - a rollback pays (detectTime − lastCheckpoint) and yields a correct
//     run (the fault was transient; re-execution is clean);
//   - declining to roll back pays nothing immediately, but a WO run is
//     discovered at the end and re-executed from the checkpoint: it pays
//     (T − lastCheckpoint) and counts as an escaped SDC for strategies
//     without any detection (never-roll-back).
func Evaluate(cfg Config, res *harness.CampaignResult) Report {
	rep := Report{App: res.App}
	for _, e := range res.Experiments {
		if !e.Fired {
			continue
		}
		rep.Experiments++
		T := model.CyclesToSeconds(int64(e.Cycles))
		tf := model.CyclesToSeconds(int64(e.InjCycle))
		d := cfg.Decide(tf)
		if d.DetectTime > T {
			d.DetectTime = T
		}
		redo := d.DetectTime - d.LastCheckpoint

		if e.Outcome == classify.Crashed {
			// The job died; everyone restarts from the checkpoint.
			rep.WastePolicy += redo
			rep.WasteAlways += redo
			rep.WasteNever += redo
			continue
		}
		// Always-roll-back strategy.
		rep.WasteAlways += redo
		// Never-roll-back strategy.
		if e.Outcome == classify.WrongOutput {
			rep.WasteNever += T - d.LastCheckpoint
			rep.EscapedNever++
		}
		// Model-driven policy.
		if d.Rollback {
			rep.Rollbacks++
			rep.WastePolicy += redo
			if e.Outcome.IsCorrectOutput() || e.Outcome == classify.ProlongedExecution {
				rep.FalseRollbacks++
			}
			continue
		}
		if e.Outcome == classify.WrongOutput {
			rep.WastePolicy += T - d.LastCheckpoint
			rep.EscapedPolicy++
		}
	}
	return rep
}

// Format renders the report.
func (r Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Recovery policy evaluation — %s (%d detected faults)\n", r.App, r.Experiments)
	fmt.Fprintf(&sb, "%-22s %14s %10s\n", "strategy", "waste (virt s)", "escaped WO")
	fmt.Fprintf(&sb, "%-22s %14.6f %10d\n", "model-driven policy", r.WastePolicy, r.EscapedPolicy)
	fmt.Fprintf(&sb, "%-22s %14.6f %10s\n", "always roll back", r.WasteAlways, "0")
	fmt.Fprintf(&sb, "%-22s %14.6f %10d\n", "never roll back", r.WasteNever, r.EscapedNever)
	fmt.Fprintf(&sb, "policy rollbacks: %d (%d on runs that would have been correct)\n",
		r.Rollbacks, r.FalseRollbacks)
	return sb.String()
}
