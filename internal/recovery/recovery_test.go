package recovery

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/classify"
	"repro/internal/harness"
	"repro/internal/model"
)

func TestDecide(t *testing.T) {
	cfg := Config{
		Model:              model.AppModel{FPS: 100}, // 100 CML/s
		ThresholdCML:       10,
		DetectionLatency:   0.05,
		CheckpointInterval: 0.1,
	}
	// Fault at 0.12 s -> detect at 0.17 s; last checkpoint at 0.1 s;
	// estimate 100 * 0.07 = 7 <= 10 -> keep running.
	d := cfg.Decide(0.12)
	if math.Abs(d.DetectTime-0.17) > 1e-12 || d.LastCheckpoint != 0.1 {
		t.Errorf("decision times = %+v", d)
	}
	if d.EstMaxCML < 6.9 || d.EstMaxCML > 7.1 {
		t.Errorf("estimate = %v, want ~7", d.EstMaxCML)
	}
	if d.Rollback {
		t.Error("estimate under threshold must not roll back")
	}
	// A faster-propagating application must roll back in the same window.
	cfg.Model.FPS = 1000
	if d := cfg.Decide(0.12); !d.Rollback {
		t.Error("estimate over threshold must roll back")
	}
}

func TestDecideNoCheckpointing(t *testing.T) {
	cfg := Config{Model: model.AppModel{FPS: 10}, ThresholdCML: 1, DetectionLatency: 0.5}
	d := cfg.Decide(2.0)
	if d.LastCheckpoint != 0 {
		t.Errorf("without interval, checkpoint = %v, want 0 (job start)", d.LastCheckpoint)
	}
}

func fakeCampaign() *harness.CampaignResult {
	res := &harness.CampaignResult{App: "X"}
	mk := func(o classify.Outcome, injCycle, cycles uint64) harness.ExperimentSummary {
		return harness.ExperimentSummary{Outcome: o, Fired: true, InjCycle: injCycle, Cycles: cycles}
	}
	res.Experiments = []harness.ExperimentSummary{
		mk(classify.Vanished, 1e6, 1e7),
		mk(classify.OutputNotAffected, 5e6, 1e7),
		mk(classify.WrongOutput, 2e6, 1e7),
		mk(classify.Crashed, 3e6, 4e6),
		{Outcome: classify.Vanished, Fired: false}, // never fired: skipped
	}
	return res
}

func TestEvaluateAccounting(t *testing.T) {
	// High threshold: the policy never rolls back (acts like never-rollback
	// plus crash restarts).
	cfg := Config{
		Model:              model.AppModel{FPS: 1}, // negligible estimates
		ThresholdCML:       1e9,
		DetectionLatency:   1e-4,
		CheckpointInterval: 1e-3,
	}
	rep := Evaluate(cfg, fakeCampaign())
	if rep.Experiments != 4 {
		t.Fatalf("experiments = %d", rep.Experiments)
	}
	if rep.Rollbacks != 0 || rep.EscapedPolicy != 1 || rep.EscapedNever != 1 {
		t.Errorf("report = %+v", rep)
	}
	if rep.WastePolicy != rep.WasteNever {
		t.Errorf("no-rollback policy waste %v != never waste %v", rep.WastePolicy, rep.WasteNever)
	}
	// Zero threshold: the policy always rolls back; no escaped WO.
	cfg.ThresholdCML = 0
	rep = Evaluate(cfg, fakeCampaign())
	if rep.EscapedPolicy != 0 {
		t.Errorf("always-policy escaped %d WO", rep.EscapedPolicy)
	}
	if rep.Rollbacks != 3 { // all but the crash
		t.Errorf("rollbacks = %d, want 3", rep.Rollbacks)
	}
	if rep.FalseRollbacks != 2 { // V and ONA would have been correct
		t.Errorf("false rollbacks = %d, want 2", rep.FalseRollbacks)
	}
	if rep.WastePolicy != rep.WasteAlways {
		t.Errorf("always-policy waste %v != always waste %v", rep.WastePolicy, rep.WasteAlways)
	}
}

func TestEvaluateOnRealCampaign(t *testing.T) {
	app := apps.NewHydro()
	res, err := harness.RunCampaign(harness.CampaignConfig{
		App: app, Params: app.TestParams(), Sampling: harness.Sampling{Runs: 30, Seed: 8},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Model:              res.Model,
		ThresholdCML:       20,
		DetectionLatency:   2e-6,
		CheckpointInterval: 5e-6,
	}
	rep := Evaluate(cfg, res)
	if rep.Experiments == 0 {
		t.Fatal("no experiments evaluated")
	}
	// The policy must never waste more than the worse of the two naive
	// strategies combined (sanity bound).
	if rep.WastePolicy > rep.WasteAlways+rep.WasteNever {
		t.Errorf("policy waste %v exceeds naive bounds %v/%v",
			rep.WastePolicy, rep.WasteAlways, rep.WasteNever)
	}
	text := rep.Format()
	for _, want := range []string{"Recovery policy", "model-driven", "never roll back"} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}
