// Package classify implements the paper's outcome taxonomy (§2):
//
//	Vanished (V)             masked before reaching memory; output correct
//	Output Not Affected (ONA) memory contaminated, output still correct
//	Wrong Output (WO)        output corrupted or application-reported failure
//	Prolonged EXecution (PEX) output correct but extra work was needed
//	Crashed (C)              traps, MPI_Abort, hangs
//
// CO (Correct Output) = V + ONA: the classes a "black-box" output-variation
// analysis cannot distinguish (§4.3).
package classify

import "math"

// Outcome is one experiment's class.
type Outcome int

// Outcome classes.
const (
	Vanished Outcome = iota
	OutputNotAffected
	WrongOutput
	ProlongedExecution
	Crashed
	numOutcomes
)

// NumOutcomes is the number of outcome classes.
const NumOutcomes = int(numOutcomes)

var outcomeNames = [NumOutcomes]string{"V", "ONA", "WO", "PEX", "C"}

// String returns the paper's abbreviation for the class.
func (o Outcome) String() string {
	if o >= 0 && int(o) < NumOutcomes {
		return outcomeNames[o]
	}
	return "?"
}

// IsCorrectOutput reports whether the class counts toward CO (V + ONA).
func (o Outcome) IsCorrectOutput() bool {
	return o == Vanished || o == OutputNotAffected
}

// Golden captures the fault-free reference execution of one application
// configuration.
type Golden struct {
	Outputs    []float64
	Cycles     uint64
	Iterations int64
}

// RunResult captures one fault-injection experiment.
type RunResult struct {
	// Err is non-nil when any rank trapped (including aborts and hangs).
	Err error
	// Outputs is the concatenated observable output of all ranks.
	Outputs []float64
	// Cycles is the maximum application cycles over ranks.
	Cycles uint64
	// Iterations is the solver iteration count reported by the program.
	Iterations int64
	// EverContaminated reports whether any rank's memory state was ever
	// contaminated.
	EverContaminated bool
}

// Criteria parameterizes classification.
type Criteria struct {
	// Tolerance is the relative output tolerance; the paper uses 5%.
	Tolerance float64
	// AbsFloor guards relative comparison of near-zero outputs.
	AbsFloor float64
	// ProlongFactor: a run whose cycle count exceeds golden cycles by this
	// factor (while producing correct output) is PEX.
	ProlongFactor float64
}

// DefaultCriteria matches the paper: 5% output tolerance.
func DefaultCriteria() Criteria {
	return Criteria{Tolerance: 0.05, AbsFloor: 1e-12, ProlongFactor: 1.02}
}

// OutputsMatch reports whether got matches want within the criteria.
func (c Criteria) OutputsMatch(want, got []float64) bool {
	if len(want) != len(got) {
		return false
	}
	for i := range want {
		w, g := want[i], got[i]
		if math.IsNaN(g) != math.IsNaN(w) {
			return false
		}
		if math.IsNaN(w) {
			continue
		}
		den := math.Abs(w)
		if den < c.AbsFloor {
			den = c.AbsFloor
		}
		if math.Abs(g-w)/den > c.Tolerance {
			return false
		}
	}
	return true
}

// Classify assigns the outcome class of one experiment.
func (c Criteria) Classify(golden Golden, run RunResult) Outcome {
	if run.Err != nil {
		return Crashed
	}
	correct := c.OutputsMatch(golden.Outputs, run.Outputs)
	prolonged := run.Iterations > golden.Iterations ||
		float64(run.Cycles) > float64(golden.Cycles)*c.ProlongFactor
	switch {
	case correct && !prolonged:
		if run.EverContaminated {
			return OutputNotAffected
		}
		return Vanished
	case correct && prolonged:
		return ProlongedExecution
	default:
		return WrongOutput
	}
}

// Tally accumulates outcome counts over a campaign.
type Tally struct {
	Counts [NumOutcomes]int
	Total  int
}

// Add records one outcome.
func (t *Tally) Add(o Outcome) {
	t.Counts[o]++
	t.Total++
}

// Percent returns the percentage of runs in the class.
func (t *Tally) Percent(o Outcome) float64 {
	if t.Total == 0 {
		return 0
	}
	return 100 * float64(t.Counts[o]) / float64(t.Total)
}

// PercentCO returns the Correct Output percentage (V + ONA), the quantity a
// black-box analysis reports.
func (t *Tally) PercentCO() float64 {
	return t.Percent(Vanished) + t.Percent(OutputNotAffected)
}
