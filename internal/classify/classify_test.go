package classify

import (
	"errors"
	"math"
	"testing"
)

func TestOutcomeStrings(t *testing.T) {
	want := []string{"V", "ONA", "WO", "PEX", "C"}
	for o := Vanished; o <= Crashed; o++ {
		if o.String() != want[o] {
			t.Errorf("%d.String() = %q, want %q", o, o.String(), want[o])
		}
	}
	if Outcome(99).String() != "?" {
		t.Error("invalid outcome must stringify to ?")
	}
}

func TestIsCorrectOutput(t *testing.T) {
	if !Vanished.IsCorrectOutput() || !OutputNotAffected.IsCorrectOutput() {
		t.Error("V and ONA are CO")
	}
	if WrongOutput.IsCorrectOutput() || ProlongedExecution.IsCorrectOutput() || Crashed.IsCorrectOutput() {
		t.Error("WO/PEX/C are not CO")
	}
}

func TestOutputsMatch(t *testing.T) {
	c := DefaultCriteria()
	if !c.OutputsMatch([]float64{100}, []float64{104}) {
		t.Error("4% deviation rejected at 5% tolerance")
	}
	if c.OutputsMatch([]float64{100}, []float64{106}) {
		t.Error("6% deviation accepted at 5% tolerance")
	}
	if c.OutputsMatch([]float64{1, 2}, []float64{1}) {
		t.Error("length mismatch accepted")
	}
	if !c.OutputsMatch([]float64{0}, []float64{1e-14}) {
		t.Error("near-zero noise rejected")
	}
	if c.OutputsMatch([]float64{1}, []float64{math.NaN()}) {
		t.Error("NaN accepted against finite value")
	}
	if !c.OutputsMatch([]float64{math.NaN()}, []float64{math.NaN()}) {
		t.Error("matching NaNs rejected")
	}
}

func TestClassify(t *testing.T) {
	c := DefaultCriteria()
	golden := Golden{Outputs: []float64{10}, Cycles: 1000, Iterations: 50}
	cases := []struct {
		name string
		run  RunResult
		want Outcome
	}{
		{"crash", RunResult{Err: errors.New("trap")}, Crashed},
		{"vanished", RunResult{Outputs: []float64{10}, Cycles: 1000, Iterations: 50}, Vanished},
		{"ona", RunResult{Outputs: []float64{10}, Cycles: 1000, Iterations: 50, EverContaminated: true}, OutputNotAffected},
		{"wrong output", RunResult{Outputs: []float64{20}, Cycles: 1000, Iterations: 50, EverContaminated: true}, WrongOutput},
		{"pex iterations", RunResult{Outputs: []float64{10}, Cycles: 1400, Iterations: 70, EverContaminated: true}, ProlongedExecution},
		{"pex cycles", RunResult{Outputs: []float64{10}, Cycles: 1100, Iterations: 50, EverContaminated: true}, ProlongedExecution},
		{"wrong and long is WO", RunResult{Outputs: []float64{20}, Cycles: 1400, Iterations: 70}, WrongOutput},
	}
	for _, tc := range cases {
		if got := c.Classify(golden, tc.run); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestTally(t *testing.T) {
	var tl Tally
	for _, o := range []Outcome{Vanished, OutputNotAffected, OutputNotAffected, WrongOutput, Crashed} {
		tl.Add(o)
	}
	if tl.Total != 5 {
		t.Errorf("total = %d", tl.Total)
	}
	if p := tl.Percent(OutputNotAffected); p != 40 {
		t.Errorf("ONA%% = %v", p)
	}
	if p := tl.PercentCO(); p != 60 {
		t.Errorf("CO%% = %v", p)
	}
	var empty Tally
	if empty.Percent(Vanished) != 0 {
		t.Error("empty tally percent must be 0")
	}
}
