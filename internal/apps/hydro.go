package apps

import (
	"math"

	"repro/internal/ir"
)

// Hydro is the LULESH proxy: one-dimensional Lagrangian shock hydrodynamics
// solving a Sedov-style blast (energy deposited in the first cell of rank
// 0). Like LULESH it is an explicit time-stepped stencil code: pressures are
// computed from energies, halo pressures are exchanged with neighbor ranks
// every step, the stable timestep is a global min-reduction, and an internal
// total-energy sanity check aborts the job when the state leaves physical
// bounds (the paper observes LULESH crashing through this check rather than
// producing wrong output, §4.2).
type Hydro struct{}

// NewHydro returns the LULESH proxy.
func NewHydro() Hydro { return Hydro{} }

// Name identifies the paper application this proxies.
func (Hydro) Name() string { return "LULESH" }

// DefaultParams sizes a campaign run.
func (Hydro) DefaultParams() Params { return Params{Ranks: 8, Size: 48, Steps: 30} }

// TestParams sizes a fast run.
func (Hydro) TestParams() Params { return Params{Ranks: 4, Size: 16, Steps: 10} }

// Hydro model constants, shared between the IR program and the reference.
const (
	hydroGamma   = 1.4
	hydroCFL     = 0.25
	hydroDT0     = 1e-3
	hydroDTMax   = 0.05
	hydroDamping = 0.999
	hydroEMin    = 1e-10
	hydroEBg     = 1e-6
	hydroEDep    = 10.0
	hydroEps     = 1e-12
)

// Hydro message tags.
const (
	hydroTagLeftward  = 1 // p[0] traveling to the left neighbor
	hydroTagRightward = 2 // p[N-1] traveling to the right neighbor
)

// Build constructs the per-rank IR program.
func (h Hydro) Build(p Params) (*ir.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := int64(p.Size)
	b := ir.NewBuilder()
	eA := b.Global("e", n)
	rhoA := b.Global("rho", n)
	pA := b.Global("p", n)
	vA := b.Global("v", n+1)
	xA := b.Global("x", n+1)
	haloL := b.Global("haloL", 1)
	haloR := b.Global("haloR", 1)
	sendSlot := b.Global("sendSlot", 1)
	redSlot := b.Global("redSlot", 1)

	// etot computes the global total energy: sum(e[i]*m) + sum(v[i]^2/2),
	// allreduced over ranks.
	{
		f := b.Func("etot", 0, 1)
		i := f.NewReg()
		local := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			f.Op3(ir.FAdd, local, ir.R(local), ir.R(f.Ld(ir.ImmI(eA), ir.R(i))))
		})
		f.For(i, ir.ImmI(0), ir.ImmI(n+1), func() {
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			ke := f.FMul(ir.R(f.FMul(ir.R(vi), ir.R(vi))), ir.ImmF(0.5))
			f.Op3(ir.FAdd, local, ir.R(local), ir.R(ke))
		})
		f.Store(ir.R(local), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
		f.Ret(ir.R(f.Load(ir.ImmI(redSlot))))
	}

	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	size := f.MPISize()
	lastRank := f.Sub(ir.R(size), ir.ImmI(1))
	isFirst := f.ICmp(ir.ICmpEQ, ir.R(rank), ir.ImmI(0))
	isLast := f.ICmp(ir.ICmpEQ, ir.R(rank), ir.R(lastRank))

	// Initialization. The background is weakly perturbed (energy ripple
	// and a small velocity field) so the whole domain is dynamically
	// active, as LULESH's full-domain Sedov state is: every cell's update
	// depends on the global timestep, which is how a single corrupted cell
	// can contaminate a large fraction of the state (paper §4.3 reports up
	// to 25%).
	i := f.NewReg()
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		gi := f.SIToFP(ir.R(f.Add(ir.R(f.Mul(ir.R(rank), ir.ImmI(n))), ir.R(i))))
		ripple := f.FMul(ir.ImmF(0.5*hydroEBg), ir.R(f.Sin(ir.R(f.FMul(ir.ImmF(0.2), ir.R(gi))))))
		f.St(ir.R(f.FAdd(ir.ImmF(hydroEBg), ir.R(ripple))), ir.ImmI(eA), ir.R(i))
		f.St(ir.ImmF(1.0), ir.ImmI(rhoA), ir.R(i))
		f.St(ir.ImmF(0), ir.ImmI(pA), ir.R(i))
	})
	f.For(i, ir.ImmI(0), ir.ImmI(n+1), func() {
		gi := f.Add(ir.R(f.Mul(ir.R(rank), ir.ImmI(n))), ir.R(i))
		gif := f.SIToFP(ir.R(gi))
		f.St(ir.R(f.FMul(ir.ImmF(1e-4), ir.R(f.Sin(ir.R(f.FMul(ir.ImmF(0.3), ir.R(gif))))))), ir.ImmI(vA), ir.R(i))
		f.St(ir.R(gif), ir.ImmI(xA), ir.R(i))
	})
	f.If(ir.R(isFirst), func() {
		f.St(ir.ImmF(hydroEDep), ir.ImmI(eA), ir.ImmI(0))
	})

	dt := f.CF(hydroDT0)
	e0 := f.NewReg()
	f.Call("etot", []ir.Reg{e0})
	bound := f.FAdd(ir.R(f.FMul(ir.R(e0), ir.ImmF(2))), ir.ImmF(1))
	etotReg := f.NewReg()
	f.Mov(etotReg, ir.R(e0))

	s := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(int64(p.Steps)), func() {
		f.Tick(ir.R(s))
		// Pressure: p[i] = (gamma-1) * rho[i] * e[i].
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			rho := f.Ld(ir.ImmI(rhoA), ir.R(i))
			e := f.Ld(ir.ImmI(eA), ir.R(i))
			pi := f.FMul(ir.R(f.FMul(ir.ImmF(hydroGamma-1), ir.R(rho))), ir.R(e))
			f.St(ir.R(pi), ir.ImmI(pA), ir.R(i))
		})
		// Halo exchange; walls mirror the local boundary pressure.
		f.IfElse(ir.R(isFirst),
			func() { f.Store(ir.R(f.Load(ir.ImmI(pA))), ir.ImmI(haloL)) },
			func() {
				f.MPISend(ir.ImmI(pA), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(hydroTagLeftward))
			},
		)
		f.IfElse(ir.R(isLast),
			func() { f.Store(ir.R(f.Load(ir.ImmI(pA+n-1))), ir.ImmI(haloR)) },
			func() {
				f.MPISend(ir.ImmI(pA+n-1), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(hydroTagRightward))
			},
		)
		f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(isLast), ir.ImmI(0))), func() {
			f.MPIRecv(ir.ImmI(haloR), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(hydroTagLeftward))
		})
		f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(isFirst), ir.ImmI(0))), func() {
			f.MPIRecv(ir.ImmI(haloL), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(hydroTagRightward))
		})
		// Node velocities and positions.
		f.For(i, ir.ImmI(0), ir.ImmI(n+1), func() {
			atLeft := f.ICmp(ir.ICmpEQ, ir.R(i), ir.ImmI(0))
			atRight := f.ICmp(ir.ICmpEQ, ir.R(i), ir.ImmI(n))
			pm := f.NewReg()
			f.IfElse(ir.R(atLeft),
				func() { f.Mov(pm, ir.R(f.Load(ir.ImmI(haloL)))) },
				func() { f.Mov(pm, ir.R(f.Ld(ir.ImmI(pA), ir.R(f.Sub(ir.R(i), ir.ImmI(1)))))) },
			)
			pp := f.NewReg()
			f.IfElse(ir.R(atRight),
				func() { f.Mov(pp, ir.R(f.Load(ir.ImmI(haloR)))) },
				func() { f.Mov(pp, ir.R(f.Ld(ir.ImmI(pA), ir.R(i)))) },
			)
			force := f.FSub(ir.R(pm), ir.R(pp))
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			vnew := f.FMul(ir.ImmF(hydroDamping), ir.R(f.FAdd(ir.R(vi), ir.R(f.FMul(ir.R(dt), ir.R(force))))))
			f.St(ir.R(vnew), ir.ImmI(vA), ir.R(i))
			xi := f.Ld(ir.ImmI(xA), ir.R(i))
			f.St(ir.R(f.FAdd(ir.R(xi), ir.R(f.FMul(ir.R(dt), ir.R(vnew))))), ir.ImmI(xA), ir.R(i))
		})
		// Cell energies: e[i] = max(e[i] - dt*p[i]*(v[i+1]-v[i]), eMin).
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			vp := f.Ld(ir.ImmI(vA), ir.R(f.Add(ir.R(i), ir.ImmI(1))))
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			div := f.FSub(ir.R(vp), ir.R(vi))
			pi := f.Ld(ir.ImmI(pA), ir.R(i))
			work := f.FMul(ir.R(f.FMul(ir.R(dt), ir.R(pi))), ir.R(div))
			e := f.Ld(ir.ImmI(eA), ir.R(i))
			f.St(ir.R(f.FMax(ir.R(f.FSub(ir.R(e), ir.R(work))), ir.ImmF(hydroEMin))), ir.ImmI(eA), ir.R(i))
		})
		// Stable timestep: global min of CFL / (cs + |v| + eps).
		local := f.CF(hydroDTMax)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			pi := f.Ld(ir.ImmI(pA), ir.R(i))
			rho := f.Ld(ir.ImmI(rhoA), ir.R(i))
			cs := f.Sqrt(ir.R(f.FDiv(ir.R(f.FMul(ir.ImmF(hydroGamma), ir.R(pi))), ir.R(rho))))
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			rate := f.FAdd(ir.R(f.FAdd(ir.R(cs), ir.R(f.Fabs(ir.R(vi))))), ir.ImmF(hydroEps))
			cand := f.FDiv(ir.ImmF(hydroCFL), ir.R(rate))
			f.Mov(local, ir.R(f.FMin(ir.R(local), ir.R(cand))))
		})
		f.Store(ir.R(local), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceMin)
		f.Mov(dt, ir.R(f.FMin(ir.R(f.Load(ir.ImmI(redSlot))), ir.ImmF(hydroDTMax))))
		// Internal sanity check: abort when the total energy leaves
		// physical bounds or becomes NaN (LULESH's MPI_Abort path).
		f.Call("etot", []ir.Reg{etotReg})
		bad := f.Or(
			ir.R(f.FCmp(ir.FCmpNE, ir.R(etotReg), ir.R(etotReg))),
			ir.R(f.Or(
				ir.R(f.FCmp(ir.FCmpGT, ir.R(etotReg), ir.R(bound))),
				ir.R(f.FCmp(ir.FCmpLT, ir.R(etotReg), ir.ImmF(0))),
			)),
		)
		f.If(ir.R(bad), func() { f.MPIAbort(ir.ImmI(3)) })
	})

	// Observable outputs: per-rank energy and velocity checksums; rank 0
	// also reports the final total energy and timestep.
	esum := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.Op3(ir.FAdd, esum, ir.R(esum), ir.R(f.Ld(ir.ImmI(eA), ir.R(i))))
	})
	vsum := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(n+1), func() {
		f.Op3(ir.FAdd, vsum, ir.R(vsum), ir.R(f.Ld(ir.ImmI(vA), ir.R(i))))
	})
	f.OutputF(ir.R(esum))
	f.OutputF(ir.R(vsum))
	f.If(ir.R(isFirst), func() {
		f.OutputF(ir.R(etotReg))
		f.OutputF(ir.R(dt))
	})
	f.Iterations(ir.ImmI(int64(p.Steps)))
	f.Ret()
	return b.Build()
}

// Reference replays the model in pure Go with the identical operation
// order, including the rank-ordered reduction folds.
func (h Hydro) Reference(p Params) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := p.Size
	R := p.Ranks
	e := make([][]float64, R)
	rho := make([][]float64, R)
	pr := make([][]float64, R)
	v := make([][]float64, R)
	x := make([][]float64, R)
	for r := 0; r < R; r++ {
		e[r] = make([]float64, n)
		rho[r] = make([]float64, n)
		pr[r] = make([]float64, n)
		v[r] = make([]float64, n+1)
		x[r] = make([]float64, n+1)
		for i := 0; i < n; i++ {
			gi := float64(r*n + i)
			e[r][i] = hydroEBg + 0.5*hydroEBg*math.Sin(0.2*gi)
			rho[r][i] = 1.0
		}
		for i := 0; i <= n; i++ {
			gi := float64(r*n + i)
			v[r][i] = 1e-4 * math.Sin(0.3*gi)
			x[r][i] = gi
		}
	}
	e[0][0] = hydroEDep

	etot := func() float64 {
		total := 0.0
		for r := 0; r < R; r++ {
			local := 0.0
			for i := 0; i < n; i++ {
				local += e[r][i]
			}
			for i := 0; i <= n; i++ {
				local += v[r][i] * v[r][i] * 0.5
			}
			total += local
		}
		return total
	}

	dt := hydroDT0
	e0 := etot()
	bound := e0*2 + 1
	etotCur := e0
	haloL := make([]float64, R)
	haloR := make([]float64, R)
	for s := 0; s < p.Steps; s++ {
		for r := 0; r < R; r++ {
			for i := 0; i < n; i++ {
				pr[r][i] = (hydroGamma - 1) * rho[r][i] * e[r][i]
			}
		}
		for r := 0; r < R; r++ {
			if r == 0 {
				haloL[r] = pr[r][0]
			} else {
				haloL[r] = pr[r-1][n-1]
			}
			if r == R-1 {
				haloR[r] = pr[r][n-1]
			} else {
				haloR[r] = pr[r+1][0]
			}
		}
		for r := 0; r < R; r++ {
			for i := 0; i <= n; i++ {
				var pm, pp float64
				if i == 0 {
					pm = haloL[r]
				} else {
					pm = pr[r][i-1]
				}
				if i == n {
					pp = haloR[r]
				} else {
					pp = pr[r][i]
				}
				force := pm - pp
				vnew := hydroDamping * (v[r][i] + dt*force)
				v[r][i] = vnew
				x[r][i] = x[r][i] + dt*vnew
			}
			for i := 0; i < n; i++ {
				div := v[r][i+1] - v[r][i]
				work := dt * pr[r][i] * div
				e[r][i] = math.Max(e[r][i]-work, hydroEMin)
			}
		}
		// Global timestep: fold rank minima in rank order.
		global := math.Inf(1)
		for r := 0; r < R; r++ {
			local := hydroDTMax
			for i := 0; i < n; i++ {
				cs := math.Sqrt(hydroGamma * pr[r][i] / rho[r][i])
				rate := cs + math.Abs(v[r][i]) + hydroEps
				local = math.Min(local, hydroCFL/rate)
			}
			if r == 0 {
				global = local
			} else {
				global = math.Min(global, local)
			}
		}
		dt = math.Min(global, hydroDTMax)
		etotCur = etot()
		if etotCur != etotCur || etotCur > bound || etotCur < 0 {
			return nil, errFaultFreeAbort("hydro", s)
		}
	}

	var out []float64
	for r := 0; r < R; r++ {
		esum := 0.0
		for i := 0; i < n; i++ {
			esum += e[r][i]
		}
		vsum := 0.0
		for i := 0; i <= n; i++ {
			vsum += v[r][i]
		}
		out = append(out, esum, vsum)
		if r == 0 {
			out = append(out, etotCur, dt)
		}
	}
	return out, nil
}
