package apps_test

import (
	"math"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/transform"
)

// differentialTest checks the core apps invariant: a fault-free run of the
// FPM-instrumented IR program reproduces the pure-Go reference outputs
// bit-for-bit, and contaminates nothing.
func differentialTest(t *testing.T, app apps.App) {
	t.Helper()
	p := app.TestParams()
	prog, err := app.Build(p)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	want, err := app.Reference(p)
	if err != nil {
		t.Fatalf("reference: %v", err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatalf("instrument: %v", err)
	}
	out := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	if out.Err != nil {
		t.Fatalf("fault-free run failed: %v", out.Err)
	}
	if out.Ever {
		t.Error("fault-free run contaminated memory")
	}
	if len(out.Outputs) != len(want) {
		t.Fatalf("outputs: got %d values %v, want %d values %v",
			len(out.Outputs), out.Outputs, len(want), want)
	}
	for i := range want {
		if out.Outputs[i] != want[i] {
			t.Errorf("output %d: got %v, want %v (diff %g)",
				i, out.Outputs[i], want[i], out.Outputs[i]-want[i])
		}
	}
	for r, rr := range out.Ranks {
		if rr.Sites == 0 {
			t.Errorf("rank %d has no injection sites", r)
		}
		if rr.Cycles == 0 {
			t.Errorf("rank %d executed no cycles", r)
		}
	}
}

// determinismTest checks that two fault-free runs are identical.
func determinismTest(t *testing.T, app apps.App) {
	t.Helper()
	p := app.TestParams()
	prog, err := app.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := transform.Instrument(prog, transform.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	a := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	b := core.Run(inst, core.RunConfig{Ranks: p.Ranks})
	if a.Err != nil || b.Err != nil {
		t.Fatalf("runs failed: %v, %v", a.Err, b.Err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ: %d vs %d", a.Cycles, b.Cycles)
	}
	for r := range a.Ranks {
		if a.Ranks[r].Sites != b.Ranks[r].Sites {
			t.Errorf("rank %d site counts differ: %d vs %d",
				r, a.Ranks[r].Sites, b.Ranks[r].Sites)
		}
	}
	for i := range a.Outputs {
		if a.Outputs[i] != b.Outputs[i] {
			t.Errorf("output %d differs: %v vs %v", i, a.Outputs[i], b.Outputs[i])
		}
	}
}

func finiteOutputs(t *testing.T, outs []float64) {
	t.Helper()
	for i, v := range outs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("output %d is not finite: %v", i, v)
		}
	}
}

func TestHydroDifferential(t *testing.T)  { differentialTest(t, apps.NewHydro()) }
func TestHydroDeterministic(t *testing.T) { determinismTest(t, apps.NewHydro()) }
func TestHydroReferenceFinite(t *testing.T) {
	out, err := apps.NewHydro().Reference(apps.NewHydro().TestParams())
	if err != nil {
		t.Fatal(err)
	}
	finiteOutputs(t, out)
}

func TestHydroDefaultParamsStable(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	app := apps.NewHydro()
	out, err := app.Reference(app.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	finiteOutputs(t, out)
}

func TestMDDifferential(t *testing.T)  { differentialTest(t, apps.NewMD()) }
func TestMDDeterministic(t *testing.T) { determinismTest(t, apps.NewMD()) }

func TestFEDifferential(t *testing.T)  { differentialTest(t, apps.NewFE()) }
func TestFEDeterministic(t *testing.T) { determinismTest(t, apps.NewFE()) }

func TestFEConvergesWithinCap(t *testing.T) {
	fe := apps.NewFE().(apps.FE)
	p := fe.TestParams()
	it, err := fe.ReferenceIterations(p)
	if err != nil {
		t.Fatal(err)
	}
	if it <= 0 || it >= int64(p.Steps) {
		t.Errorf("iterations = %d, want in (0, %d)", it, p.Steps)
	}
}

func TestAMGDifferential(t *testing.T)  { differentialTest(t, apps.NewAMG()) }
func TestAMGDeterministic(t *testing.T) { determinismTest(t, apps.NewAMG()) }

func TestMCBDifferential(t *testing.T)  { differentialTest(t, apps.NewMCB()) }
func TestMCBDeterministic(t *testing.T) { determinismTest(t, apps.NewMCB()) }

func TestAllAppsRegistered(t *testing.T) {
	all := apps.All()
	if len(all) != 5 {
		t.Fatalf("registered %d apps, want 5", len(all))
	}
	want := []string{"LULESH", "LAMMPS", "miniFE", "AMG2013", "MCB"}
	for i, a := range all {
		if a.Name() != want[i] {
			t.Errorf("app %d = %q, want %q", i, a.Name(), want[i])
		}
		if apps.ByName(want[i]) == nil {
			t.Errorf("ByName(%q) = nil", want[i])
		}
	}
	if apps.ByName("nope") != nil {
		t.Error("ByName of unknown app must be nil")
	}
}

func TestBuildRejectsInvalidParams(t *testing.T) {
	for _, a := range apps.All() {
		if _, err := a.Build(apps.Params{}); err == nil {
			t.Errorf("%s: zero params accepted", a.Name())
		}
		if _, err := a.Reference(apps.Params{Ranks: -1, Size: 4, Steps: 1}); err == nil {
			t.Errorf("%s: negative ranks accepted by Reference", a.Name())
		}
	}
}
