package apps_test

import (
	"math"
	"testing"

	"repro/internal/apps"
)

// Physical invariants of the reference implementations: these pin down the
// models themselves (beyond matching the IR bit-for-bit), so workload
// recalibration cannot silently break the physics that the propagation
// study depends on.

func TestHydroEnergyBounded(t *testing.T) {
	app := apps.NewHydro()
	p := app.TestParams()
	out, err := app.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	// Output layout: rank 0 emits [esum, vsum, Etot, dt], others [esum, vsum].
	etot := out[2]
	if etot <= 0 || etot > 2*10.0+1 {
		t.Errorf("total energy %v outside (0, 21]", etot)
	}
	dt := out[3]
	if dt <= 0 || dt > 0.05 {
		t.Errorf("dt %v outside (0, dtmax]", dt)
	}
	// Per-rank energy sums must be positive (energies are clamped above
	// a floor).
	idx := 0
	for r := 0; r < p.Ranks; r++ {
		if out[idx] <= 0 {
			t.Errorf("rank %d energy sum %v <= 0", r, out[idx])
		}
		idx += 2
		if r == 0 {
			idx += 2
		}
	}
}

func TestMDMomentumScaleSane(t *testing.T) {
	app := apps.NewMD()
	p := app.TestParams()
	out, err := app.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	// Layout per rank: n*(x, v) pairs, then local KE; rank 0 appends the
	// global KE last.
	stride := 2*p.Size + 1
	wall := float64(p.Ranks) * 10.0
	keGlobal := out[stride+1-1+0] // rank 0 block has one extra trailing value
	_ = keGlobal
	idx := 0
	for r := 0; r < p.Ranks; r++ {
		for i := 0; i < p.Size; i++ {
			x := out[idx]
			v := out[idx+1]
			idx += 2
			if x < 0 || x > wall {
				t.Errorf("rank %d atom %d escaped the box: x=%v", r, i, x)
			}
			if math.Abs(v) > 100 {
				t.Errorf("rank %d atom %d runaway velocity %v", r, i, v)
			}
		}
		ke := out[idx]
		idx++
		if ke < 0 {
			t.Errorf("rank %d negative kinetic energy %v", r, ke)
		}
		if r == 0 {
			if out[idx] < 0 {
				t.Errorf("global KE %v < 0", out[idx])
			}
			idx++
		}
	}
}

func TestFESolutionMatchesDirectSolve(t *testing.T) {
	// The CG solution of the 1-D Poisson system must match the analytic
	// parabola u_i = i*(N-1-i)/2 (for unit RHS, unit spacing, zero
	// boundaries) — checked through the per-rank solution checksums.
	fe := apps.NewFE().(apps.FE)
	p := fe.TestParams()
	out, err := fe.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	N := p.Ranks * p.Size
	want := make([]float64, 0, p.Ranks)
	for r := 0; r < p.Ranks; r++ {
		sum := 0.0
		for i := 0; i < p.Size; i++ {
			g := float64(r*p.Size + i)
			sum += g * (float64(N-1) - g) / 2
		}
		want = append(want, sum)
	}
	for r := range want {
		if math.Abs(out[r]-want[r]) > 1e-4*math.Abs(want[r])+1e-6 {
			t.Errorf("rank %d solution checksum %v, analytic %v", r, out[r], want[r])
		}
	}
}

func TestAMGReducesResidual(t *testing.T) {
	// The V-cycle residual norm must decrease monotonically (within a
	// small tolerance for interface effects) — the solver converges.
	amg := apps.NewAMG().(apps.AMG)
	p := amg.TestParams()
	rns, err := amg.ReferenceResiduals(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rns) < 3 {
		t.Fatalf("residual series too short: %v", rns)
	}
	for i := 1; i < len(rns); i++ {
		if rns[i] > rns[i-1]*1.05 {
			t.Errorf("cycle %d residual grew: %v -> %v", i, rns[i-1], rns[i])
		}
	}
	// Block-decomposed MG converges slowly across subdomain interfaces;
	// require steady progress rather than a fixed factor.
	if rns[len(rns)-1] > rns[0]*0.9 {
		t.Errorf("residual barely reduced over %d cycles: %v -> %v",
			len(rns), rns[0], rns[len(rns)-1])
	}
}

func TestMCBWeightConservation(t *testing.T) {
	// Every unit of spawned weight is either still alive or was deposited
	// into a tally (absorption deposits the full weight; path tallies add
	// extra, so tally >= absorbed weight). Alive weight must be
	// non-negative and bounded by capacity.
	app := apps.NewMCB()
	p := app.TestParams()
	out, err := app.Reference(p)
	if err != nil {
		t.Fatal(err)
	}
	// Layout per rank: n tallies, local weight; rank 0 appends global
	// weight.
	idx := 0
	totalAlive := 0.0
	for r := 0; r < p.Ranks; r++ {
		for i := 0; i < p.Size; i++ {
			if out[idx] < 0 {
				t.Errorf("rank %d cell %d negative tally %v", r, i, out[idx])
			}
			idx++
		}
		lw := out[idx]
		idx++
		if lw < 0 || lw > float64(2*p.Size) {
			t.Errorf("rank %d alive weight %v outside [0, cap]", r, lw)
		}
		totalAlive += lw
		if r == 0 {
			global := out[idx]
			idx++
			if global < 0 {
				t.Errorf("global weight %v < 0", global)
			}
		}
	}
	if totalAlive == 0 {
		t.Error("no particles alive at the end; workload degenerate")
	}
}
