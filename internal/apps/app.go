// Package apps implements the five proxy applications of the paper's
// evaluation (§4), authored in the framework IR so the FPM pass can
// instrument them and LLFI++ can inject faults:
//
//	hydro — LULESH:  Sedov-style Lagrangian shock hydrodynamics
//	md    — LAMMPS:  molecular dynamics with a tabulated pair potential
//	fe    — miniFE:  implicit finite elements, assembly + CG solve
//	amg   — AMG2013: algebraic multigrid, init/setup/solve phases
//	mcb   — MCB:     Monte Carlo particle transport with domain decomposition
//
// Every application is SPMD: all ranks execute the same IR program and
// branch on the MPI rank intrinsic. Each app has a pure-Go reference
// implementation that replays the exact floating-point operation order, so
// the IR implementation is differentially tested: a fault-free run must
// reproduce the reference outputs bit-for-bit.
package apps

import (
	"fmt"

	"repro/internal/ir"
)

// Params sizes one application run.
type Params struct {
	// Ranks is the number of MPI processes.
	Ranks int
	// Size is the per-rank problem size (cells, particles, rows).
	Size int
	// Steps is the number of timesteps, or the solver iteration cap.
	Steps int
	// Seed feeds in-program random number generation (Monte Carlo).
	Seed uint64
}

func (p Params) validate() error {
	if p.Ranks <= 0 || p.Size <= 0 || p.Steps <= 0 {
		return fmt.Errorf("apps: invalid params %+v", p)
	}
	return nil
}

// App is one proxy application.
type App interface {
	// Name is the paper application this proxies (LULESH, LAMMPS, ...).
	Name() string
	// DefaultParams sizes a campaign-scale run.
	DefaultParams() Params
	// TestParams sizes a fast run for unit tests and benchmarks.
	TestParams() Params
	// Build constructs the per-rank IR program. The same program runs on
	// every rank.
	Build(p Params) (*ir.Program, error)
	// Reference computes the expected rank-major concatenated outputs of
	// a fault-free run.
	Reference(p Params) ([]float64, error)
}

// errFaultFreeAbort reports an internal-check failure during a reference
// (fault-free) execution, which indicates a miscalibrated workload.
func errFaultFreeAbort(app string, step int) error {
	return fmt.Errorf("apps: %s reference aborted at step %d (workload unstable)", app, step)
}

// All returns the five applications in the paper's presentation order.
func All() []App {
	return []App{NewHydro(), NewMD(), NewFE(), NewAMG(), NewMCB()}
}

// ByName returns the application with the given name, or nil.
func ByName(name string) App {
	for _, a := range All() {
		if a.Name() == name {
			return a
		}
	}
	return nil
}
