package apps

import (
	"math"

	"repro/internal/ir"
)

// MD is the LAMMPS proxy: one-dimensional molecular dynamics with a
// tabulated (linearly interpolated) short-range repulsive pair potential
// and per-step neighbor lists. Like LAMMPS it spatially decomposes the
// domain across ranks, exchanges ghost particles with neighbors every
// timestep, builds a cutoff neighbor list, and integrates Newton's
// equations of motion. The chaotic particle dynamics and the per-atom
// trajectory output make LAMMPS the most WO-prone application (paper
// Fig. 6), while its purely local interactions give it the lowest fault
// propagation speed (paper Table 2). The upper half of the static force
// table is unreachable by construction, reproducing the paper's "fault in
// a static data structure that is never used" profile.
type MD struct{}

// NewMD returns the LAMMPS proxy.
func NewMD() App { return MD{} }

// Name identifies the paper application this proxies.
func (MD) Name() string { return "LAMMPS" }

// DefaultParams sizes a campaign run.
func (MD) DefaultParams() Params { return Params{Ranks: 8, Size: 20, Steps: 100} }

// TestParams sizes a fast run.
func (MD) TestParams() Params { return Params{Ranks: 4, Size: 10, Steps: 10} }

// MD model constants.
const (
	mdTableK     = 64   // force table entries; only the lower half is reachable
	mdCutoff     = 1.5  // interaction range
	mdListCutoff = 1.8  // neighbor-list range (skin included)
	mdAmplitude  = 12.0 // repulsion strength
	mdCellL      = 10.0
	mdDT         = 0.01
	mdVInit      = 0.05
	mdMaxNbr     = 12 // neighbor list capacity per atom
	mdListEvery  = 10 // rebuild the neighbor list every this many steps
)

// MD message tags.
const (
	mdTagLeftward  = 1
	mdTagRightward = 2
)

// mdForceTable computes the static force table: entry k holds the force at
// distance d = k * (2*cutoff/K); in-range lookups interpolate between
// entries below K/2, so the upper half is dead static data.
func mdForceTable() []float64 {
	tab := make([]float64, mdTableK)
	for k := range tab {
		d := float64(k) * (2 * mdCutoff / mdTableK)
		if d < mdCutoff {
			u := 1 - d/mdCutoff
			tab[k] = mdAmplitude * u * u
		}
	}
	return tab
}

// Build constructs the per-rank IR program.
func (m MD) Build(p Params) (*ir.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := int64(p.Size)
	b := ir.NewBuilder()
	xA := b.Global("x", n)
	vA := b.Global("v", n)
	fA := b.Global("f", n)
	allA := b.Global("allpos", 3*n) // locals, left ghosts, right ghosts
	nlistA := b.Global("nlist", n*mdMaxNbr)
	ncntA := b.Global("ncnt", n)
	tabA := b.Global("forcetab", mdTableK)
	b.GlobalInitF("forcetab", mdForceTable())
	sendSlot := b.Global("sendSlot", 1)
	redSlot := b.Global("redSlot", 1)

	// pairforce(xi, xj) returns the force on an atom at xi from one at xj:
	// table lookup with linear interpolation, repulsive.
	{
		f := b.Func("pairforce", 2, 1)
		xi, xj := f.Param(0), f.Param(1)
		d := f.FSub(ir.R(xj), ir.R(xi))
		ad := f.Fabs(ir.R(d))
		res := f.NewReg()
		f.IfElse(ir.R(f.FCmp(ir.FCmpLT, ir.R(ad), ir.ImmF(mdCutoff))),
			func() {
				t := f.FMul(ir.R(ad), ir.ImmF(mdTableK/(2*mdCutoff)))
				idx := f.FPToSI(ir.R(t))
				frac := f.FSub(ir.R(t), ir.R(f.SIToFP(ir.R(idx))))
				f0 := f.Ld(ir.ImmI(tabA), ir.R(idx))
				f1 := f.Ld(ir.ImmI(tabA), ir.R(f.Add(ir.R(idx), ir.ImmI(1))))
				fmag := f.FAdd(ir.R(f0), ir.R(f.FMul(ir.R(f.FSub(ir.R(f1), ir.R(f0))), ir.R(frac))))
				sign := f.Select(ir.R(f.FCmp(ir.FCmpGT, ir.R(d), ir.ImmF(0))), ir.ImmF(1), ir.ImmF(-1))
				f.Mov(res, ir.R(f.FMul(ir.R(f.FSub(ir.ImmF(0), ir.R(sign))), ir.R(fmag))))
			},
			func() { f.Mov(res, ir.ImmF(0)) },
		)
		f.Ret(ir.R(res))
	}

	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	size := f.MPISize()
	lastRank := f.Sub(ir.R(size), ir.ImmI(1))
	hasL := f.ICmp(ir.ICmpSGT, ir.R(rank), ir.ImmI(0))
	hasR := f.ICmp(ir.ICmpSLT, ir.R(rank), ir.R(lastRank))
	wallR := f.FMul(ir.R(f.SIToFP(ir.R(size))), ir.ImmF(mdCellL))

	// Initialization: particles evenly spaced, deterministic velocities.
	i := f.NewReg()
	base := f.FMul(ir.R(f.SIToFP(ir.R(rank))), ir.ImmF(mdCellL))
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		fi := f.SIToFP(ir.R(i))
		pos := f.FAdd(ir.R(base), ir.R(f.FMul(ir.R(f.FAdd(ir.R(fi), ir.ImmF(0.5))), ir.ImmF(mdCellL/float64(p.Size)))))
		f.St(ir.R(pos), ir.ImmI(xA), ir.R(i))
		seed := f.FAdd(ir.R(fi), ir.R(f.SIToFP(ir.R(rank))))
		f.St(ir.R(f.FMul(ir.ImmF(mdVInit), ir.R(f.Sin(ir.R(seed))))), ir.ImmI(vA), ir.R(i))
	})

	s := f.NewReg()
	j := f.NewReg()
	keReg := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(int64(p.Steps)), func() {
		f.Tick(ir.R(s))
		// Ghost exchange into the combined position array.
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			f.St(ir.R(f.Ld(ir.ImmI(xA), ir.R(i))), ir.ImmI(allA), ir.R(i))
		})
		f.If(ir.R(hasL), func() {
			f.MPISend(ir.ImmI(xA), ir.ImmI(n), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(mdTagLeftward))
		})
		f.If(ir.R(hasR), func() {
			f.MPISend(ir.ImmI(xA), ir.ImmI(n), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(mdTagRightward))
		})
		f.IfElse(ir.R(hasR),
			func() {
				f.MPIRecv(ir.ImmI(allA+2*n), ir.ImmI(n), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(mdTagLeftward))
			},
			func() {
				f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
					f.St(ir.ImmF(1e9), ir.ImmI(allA+2*n), ir.R(i))
				})
			},
		)
		f.IfElse(ir.R(hasL),
			func() {
				f.MPIRecv(ir.ImmI(allA+n), ir.ImmI(n), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(mdTagRightward))
			},
			func() {
				f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
					f.St(ir.ImmF(-1e9), ir.ImmI(allA+n), ir.R(i))
				})
			},
		)
		// Neighbor-list rebuild every mdListEvery steps (the list skin
		// covers the drift in between), as LAMMPS does.
		f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(f.SRem(ir.R(s), ir.ImmI(mdListEvery))), ir.ImmI(0))), func() {
			f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
				cnt := f.CI(0)
				xi := f.Ld(ir.ImmI(xA), ir.R(i))
				f.For(j, ir.ImmI(0), ir.ImmI(3*n), func() {
					f.If(ir.R(f.ICmp(ir.ICmpNE, ir.R(i), ir.R(j))), func() {
						d := f.FSub(ir.R(f.Ld(ir.ImmI(allA), ir.R(j))), ir.R(xi))
						near := f.FCmp(ir.FCmpLT, ir.R(f.Fabs(ir.R(d))), ir.ImmF(mdListCutoff))
						ok := f.And(ir.R(near), ir.R(f.ICmp(ir.ICmpSLT, ir.R(cnt), ir.ImmI(mdMaxNbr))))
						f.If(ir.R(ok), func() {
							f.St(ir.R(j), ir.ImmI(nlistA), ir.R(f.Add(ir.R(f.Mul(ir.R(i), ir.ImmI(mdMaxNbr))), ir.R(cnt))))
							f.Op3(ir.Add, cnt, ir.R(cnt), ir.ImmI(1))
						})
					})
				})
				f.St(ir.R(cnt), ir.ImmI(ncntA), ir.R(i))
			})
		})
		// Forces from the neighbor list.
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			acc := f.CF(0)
			xi := f.Ld(ir.ImmI(xA), ir.R(i))
			k := f.NewReg()
			f.For(k, ir.ImmI(0), ir.R(f.Ld(ir.ImmI(ncntA), ir.R(i))), func() {
				jj := f.Ld(ir.ImmI(nlistA), ir.R(f.Add(ir.R(f.Mul(ir.R(i), ir.ImmI(mdMaxNbr))), ir.R(k))))
				xj := f.Ld(ir.ImmI(allA), ir.R(jj))
				c := f.NewReg()
				f.Call("pairforce", []ir.Reg{c}, ir.R(xi), ir.R(xj))
				f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(c))
			})
			f.St(ir.R(acc), ir.ImmI(fA), ir.R(i))
		})
		// Integrate with reflective global walls.
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			fi := f.Ld(ir.ImmI(fA), ir.R(i))
			vn := f.FAdd(ir.R(vi), ir.R(f.FMul(ir.ImmF(mdDT), ir.R(fi))))
			xi := f.Ld(ir.ImmI(xA), ir.R(i))
			xn := f.FAdd(ir.R(xi), ir.R(f.FMul(ir.ImmF(mdDT), ir.R(vn))))
			f.If(ir.R(f.FCmp(ir.FCmpLT, ir.R(xn), ir.ImmF(0))), func() {
				f.Mov(xn, ir.R(f.FSub(ir.ImmF(0), ir.R(xn))))
				f.Mov(vn, ir.R(f.FSub(ir.ImmF(0), ir.R(vn))))
			})
			f.If(ir.R(f.FCmp(ir.FCmpGT, ir.R(xn), ir.R(wallR))), func() {
				f.Mov(xn, ir.R(f.FSub(ir.R(f.FMul(ir.ImmF(2), ir.R(wallR))), ir.R(xn))))
				f.Mov(vn, ir.R(f.FSub(ir.ImmF(0), ir.R(vn))))
			})
			f.St(ir.R(vn), ir.ImmI(vA), ir.R(i))
			f.St(ir.R(xn), ir.ImmI(xA), ir.R(i))
		})
		// Kinetic energy tally: global sum each step.
		ke := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			vi := f.Ld(ir.ImmI(vA), ir.R(i))
			f.Op3(ir.FAdd, ke, ir.R(ke), ir.R(f.FMul(ir.R(f.FMul(ir.R(vi), ir.R(vi))), ir.ImmF(0.5))))
		})
		f.Store(ir.R(ke), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
		f.Mov(keReg, ir.R(f.Load(ir.ImmI(redSlot))))
	})

	// Outputs: the per-atom trajectory dump (positions and velocities), as
	// an MD code reports — which is what makes LAMMPS's output tolerance
	// effectively strict (paper §5) — plus local KE; rank 0 adds the
	// global KE.
	ke := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.OutputF(ir.R(f.Ld(ir.ImmI(xA), ir.R(i))))
		vi := f.Ld(ir.ImmI(vA), ir.R(i))
		f.OutputF(ir.R(vi))
		f.Op3(ir.FAdd, ke, ir.R(ke), ir.R(f.FMul(ir.R(f.FMul(ir.R(vi), ir.R(vi))), ir.ImmF(0.5))))
	})
	f.OutputF(ir.R(ke))
	f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(rank), ir.ImmI(0))), func() {
		f.OutputF(ir.R(keReg))
	})
	f.Iterations(ir.ImmI(int64(p.Steps)))
	f.Ret()
	return b.Build()
}

// Reference replays the model in pure Go with identical operation order.
func (m MD) Reference(p Params) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, R := p.Size, p.Ranks
	tab := mdForceTable()
	x := make([][]float64, R)
	v := make([][]float64, R)
	frc := make([][]float64, R)
	all := make([][]float64, R)
	for r := 0; r < R; r++ {
		x[r] = make([]float64, n)
		v[r] = make([]float64, n)
		frc[r] = make([]float64, n)
		all[r] = make([]float64, 3*n)
		base := float64(r) * mdCellL
		for i := 0; i < n; i++ {
			fi := float64(i)
			x[r][i] = base + (fi+0.5)*(mdCellL/float64(p.Size))
			v[r][i] = mdVInit * math.Sin(fi+float64(r))
		}
	}
	wallR := float64(R) * mdCellL

	pairforce := func(xi, xj float64) float64 {
		d := xj - xi
		ad := math.Abs(d)
		if ad < mdCutoff {
			t := ad * (mdTableK / (2 * mdCutoff))
			idx := int(fptosiRef(t))
			frac := t - float64(idx)
			f0 := tab[idx]
			f1 := tab[idx+1]
			fmag := f0 + (f1-f0)*frac
			sign := -1.0
			if d > 0 {
				sign = 1.0
			}
			return (0 - sign) * fmag
		}
		return 0
	}

	nlist := make([][]int, R)
	keGlobal := 0.0
	for s := 0; s < p.Steps; s++ {
		// Ghost snapshot (all ranks exchange before any update).
		for r := 0; r < R; r++ {
			copy(all[r][:n], x[r])
			for i := 0; i < n; i++ {
				if r > 0 {
					all[r][n+i] = x[r-1][i]
				} else {
					all[r][n+i] = -1e9
				}
				if r < R-1 {
					all[r][2*n+i] = x[r+1][i]
				} else {
					all[r][2*n+i] = 1e9
				}
			}
		}
		for r := 0; r < R; r++ {
			if s%mdListEvery == 0 {
				lists := make([][]int, n)
				for i := 0; i < n; i++ {
					lists[i] = make([]int, 0, mdMaxNbr)
					for jj := 0; jj < 3*n; jj++ {
						if i == jj {
							continue
						}
						d := all[r][jj] - x[r][i]
						if math.Abs(d) < mdListCutoff && len(lists[i]) < mdMaxNbr {
							lists[i] = append(lists[i], jj)
						}
					}
				}
				nlist[r] = nlist[r][:0]
				for i := 0; i < n; i++ {
					flat := make([]int, mdMaxNbr+1)
					flat[0] = len(lists[i])
					copy(flat[1:], lists[i])
					nlist[r] = append(nlist[r], flat...)
				}
			}
			for i := 0; i < n; i++ {
				acc := 0.0
				row := nlist[r][i*(mdMaxNbr+1) : (i+1)*(mdMaxNbr+1)]
				for _, jj := range row[1 : 1+row[0]] {
					acc += pairforce(x[r][i], all[r][jj])
				}
				frc[r][i] = acc
			}
			for i := 0; i < n; i++ {
				vn := v[r][i] + mdDT*frc[r][i]
				xn := x[r][i] + mdDT*vn
				if xn < 0 {
					xn = 0 - xn
					vn = 0 - vn
				}
				if xn > wallR {
					xn = 2*wallR - xn
					vn = 0 - vn
				}
				v[r][i] = vn
				x[r][i] = xn
			}
		}
		keGlobal = 0
		for r := 0; r < R; r++ {
			local := 0.0
			for i := 0; i < n; i++ {
				local += v[r][i] * v[r][i] * 0.5
			}
			keGlobal += local
		}
	}

	var out []float64
	for r := 0; r < R; r++ {
		ke := 0.0
		for i := 0; i < n; i++ {
			out = append(out, x[r][i], v[r][i])
			ke += v[r][i] * v[r][i] * 0.5
		}
		out = append(out, ke)
		if r == 0 {
			out = append(out, keGlobal)
		}
	}
	return out, nil
}
