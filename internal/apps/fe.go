package apps

import (
	"repro/internal/ir"
)

// FE is the miniFE proxy: an implicit finite-element mini-app with two
// distinct phases visible in the propagation profiles (paper Fig. 7c):
// assembly of a sparse linear system (element stiffness scattered into CSR
// storage), then an unpreconditioned conjugate-gradient solve (sparse
// matrix-vector products with halo exchange, global dot products). Like
// miniFE it validates the assembled system before solving (abort path) and
// caps the solver iterations (non-convergence paths: PEX when the output is
// still right, WO when it is not).
type FE struct{}

// NewFE returns the miniFE proxy.
func NewFE() App { return FE{} }

// Name identifies the paper application this proxies.
func (FE) Name() string { return "miniFE" }

// DefaultParams sizes a campaign run. Steps is the CG iteration cap.
func (FE) DefaultParams() Params { return Params{Ranks: 8, Size: 12, Steps: 120} }

// TestParams sizes a fast run.
func (FE) TestParams() Params { return Params{Ranks: 4, Size: 8, Steps: 48} }

// FE constants.
const (
	feTol = 1e-10 // absolute threshold on r.r
)

// FE message tags.
const (
	feTagLeftward  = 1
	feTagRightward = 2
)

// Build constructs the per-rank IR program.
func (a FE) Build(p Params) (*ir.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := int64(p.Size)
	N := n * int64(p.Ranks)
	b := ir.NewBuilder()
	valsA := b.Global("vals", 3*n)
	colsA := b.Global("cols", 3*n)
	bA := b.Global("rhs", n)
	xV := b.Global("x", n)
	rV := b.Global("r", n)
	pV := b.Global("p", n)
	qV := b.Global("q", n)
	ghostL := b.Global("ghostL", 1)
	ghostR := b.Global("ghostR", 1)
	sendSlot := b.Global("sendSlot", 1)
	redSlot := b.Global("redSlot", 1)

	// gdot computes the global dot product of two local vectors.
	{
		f := b.Func("gdot", 2, 1)
		baseA, baseB := f.Param(0), f.Param(1)
		i := f.NewReg()
		local := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			va := f.Load(ir.R(f.Add(ir.R(baseA), ir.R(i))))
			vb := f.Load(ir.R(f.Add(ir.R(baseB), ir.R(i))))
			f.Op3(ir.FAdd, local, ir.R(local), ir.R(f.FMul(ir.R(va), ir.R(vb))))
		})
		f.Store(ir.R(local), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
		f.Ret(ir.R(f.Load(ir.ImmI(redSlot))))
	}

	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	size := f.MPISize()
	lo := f.Mul(ir.R(rank), ir.ImmI(n))
	hasL := f.ICmp(ir.ICmpSGT, ir.R(rank), ir.ImmI(0))
	hasR := f.ICmp(ir.ICmpSLT, ir.R(rank), ir.R(f.Sub(ir.R(size), ir.ImmI(1))))
	i := f.NewReg()

	// --- Assembly phase -------------------------------------------------
	// Fixed CSR structure: row i (global g) has slots [3i..3i+2] for
	// columns [g-1, g, g+1] (duplicated self-column with zero value at the
	// domain ends).
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		g := f.Add(ir.R(lo), ir.R(i))
		cm := f.Select(ir.R(f.ICmp(ir.ICmpEQ, ir.R(g), ir.ImmI(0))), ir.R(g), ir.R(f.Sub(ir.R(g), ir.ImmI(1))))
		cp := f.Select(ir.R(f.ICmp(ir.ICmpEQ, ir.R(g), ir.ImmI(N-1))), ir.R(g), ir.R(f.Add(ir.R(g), ir.ImmI(1))))
		s3 := f.Mul(ir.R(i), ir.ImmI(3))
		f.St(ir.R(cm), ir.ImmI(colsA), ir.R(s3))
		f.St(ir.R(g), ir.ImmI(colsA), ir.R(f.Add(ir.R(s3), ir.ImmI(1))))
		f.St(ir.R(cp), ir.ImmI(colsA), ir.R(f.Add(ir.R(s3), ir.ImmI(2))))
		f.St(ir.ImmF(0), ir.ImmI(valsA), ir.R(s3))
		f.St(ir.ImmF(0), ir.ImmI(valsA), ir.R(f.Add(ir.R(s3), ir.ImmI(1))))
		f.St(ir.ImmF(0), ir.ImmI(valsA), ir.R(f.Add(ir.R(s3), ir.ImmI(2))))
	})
	// Scatter element stiffness [1 -1; -1 1] for elements touching owned
	// rows: element g connects nodes g and g+1.
	elemLo := f.Select(ir.R(hasL), ir.R(f.Sub(ir.R(lo), ir.ImmI(1))), ir.R(lo))
	elemHi := f.NewReg()
	f.Mov(elemHi, ir.R(f.Add(ir.R(lo), ir.ImmI(n))))
	f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(hasR), ir.ImmI(0))), func() {
		f.Mov(elemHi, ir.R(f.Sub(ir.R(elemHi), ir.ImmI(1))))
	})
	g := f.NewReg()
	f.For(g, ir.R(elemLo), ir.R(elemHi), func() {
		// Row g (if owned): diag += 1, right += -1.
		li := f.Sub(ir.R(g), ir.R(lo))
		owned := f.And(
			ir.R(f.ICmp(ir.ICmpSGE, ir.R(li), ir.ImmI(0))),
			ir.R(f.ICmp(ir.ICmpSLT, ir.R(li), ir.ImmI(n))),
		)
		f.If(ir.R(owned), func() {
			s3 := f.Mul(ir.R(li), ir.ImmI(3))
			d := f.Add(ir.R(s3), ir.ImmI(1))
			f.St(ir.R(f.FAdd(ir.R(f.Ld(ir.ImmI(valsA), ir.R(d))), ir.ImmF(1))), ir.ImmI(valsA), ir.R(d))
			rslot := f.Add(ir.R(s3), ir.ImmI(2))
			f.St(ir.R(f.FAdd(ir.R(f.Ld(ir.ImmI(valsA), ir.R(rslot))), ir.ImmF(-1))), ir.ImmI(valsA), ir.R(rslot))
		})
		// Row g+1 (if owned): diag += 1, left += -1.
		lj := f.Sub(ir.R(f.Add(ir.R(g), ir.ImmI(1))), ir.R(lo))
		owned2 := f.And(
			ir.R(f.ICmp(ir.ICmpSGE, ir.R(lj), ir.ImmI(0))),
			ir.R(f.ICmp(ir.ICmpSLT, ir.R(lj), ir.ImmI(n))),
		)
		f.If(ir.R(owned2), func() {
			s3 := f.Mul(ir.R(lj), ir.ImmI(3))
			d := f.Add(ir.R(s3), ir.ImmI(1))
			f.St(ir.R(f.FAdd(ir.R(f.Ld(ir.ImmI(valsA), ir.R(d))), ir.ImmF(1))), ir.ImmI(valsA), ir.R(d))
			lslot := s3
			f.St(ir.R(f.FAdd(ir.R(f.Ld(ir.ImmI(valsA), ir.R(lslot))), ir.ImmF(-1))), ir.ImmI(valsA), ir.R(lslot))
		})
	})
	// RHS and Dirichlet rows (identity at the global boundaries).
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		gg := f.Add(ir.R(lo), ir.R(i))
		isB := f.Or(
			ir.R(f.ICmp(ir.ICmpEQ, ir.R(gg), ir.ImmI(0))),
			ir.R(f.ICmp(ir.ICmpEQ, ir.R(gg), ir.ImmI(N-1))),
		)
		s3 := f.Mul(ir.R(i), ir.ImmI(3))
		f.IfElse(ir.R(isB),
			func() {
				f.St(ir.ImmF(0), ir.ImmI(valsA), ir.R(s3))
				f.St(ir.ImmF(1), ir.ImmI(valsA), ir.R(f.Add(ir.R(s3), ir.ImmI(1))))
				f.St(ir.ImmF(0), ir.ImmI(valsA), ir.R(f.Add(ir.R(s3), ir.ImmI(2))))
				f.St(ir.ImmF(0), ir.ImmI(bA), ir.R(i))
			},
			func() { f.St(ir.ImmF(1), ir.ImmI(bA), ir.R(i)) },
		)
	})
	// Internal system check (miniFE's abort path): diagonals must be
	// positive.
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		d := f.Ld(ir.ImmI(valsA), ir.R(f.Add(ir.R(f.Mul(ir.R(i), ir.ImmI(3))), ir.ImmI(1))))
		bad := f.Or(
			ir.R(f.FCmp(ir.FCmpLE, ir.R(d), ir.ImmF(0))),
			ir.R(f.FCmp(ir.FCmpNE, ir.R(d), ir.R(d))),
		)
		f.If(ir.R(bad), func() { f.MPIAbort(ir.ImmI(7)) })
	})

	// --- Solve phase: unpreconditioned CG -------------------------------
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.St(ir.ImmF(0), ir.ImmI(xV), ir.R(i))
		rhs := f.Ld(ir.ImmI(bA), ir.R(i))
		f.St(ir.R(rhs), ir.ImmI(rV), ir.R(i))
		f.St(ir.R(rhs), ir.ImmI(pV), ir.R(i))
	})
	rr := f.NewReg()
	f.Call("gdot", []ir.Reg{rr}, ir.ImmI(rV), ir.ImmI(rV))
	iters := f.CI(0)
	k := f.NewReg()
	brk := f.NewLabel()
	f.For(k, ir.ImmI(0), ir.ImmI(int64(p.Steps)), func() {
		f.Bnz(ir.R(f.FCmp(ir.FCmpLT, ir.R(rr), ir.ImmF(feTol))), brk)
		f.Tick(ir.R(k))
		// Halo exchange of p boundary values.
		f.If(ir.R(hasL), func() {
			f.MPISend(ir.ImmI(pV), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(feTagLeftward))
		})
		f.If(ir.R(hasR), func() {
			f.MPISend(ir.ImmI(pV+n-1), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(feTagRightward))
		})
		f.IfElse(ir.R(hasR),
			func() {
				f.MPIRecv(ir.ImmI(ghostR), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(feTagLeftward))
			},
			func() { f.Store(ir.ImmF(0), ir.ImmI(ghostR)) },
		)
		f.IfElse(ir.R(hasL),
			func() {
				f.MPIRecv(ir.ImmI(ghostL), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(feTagRightward))
			},
			func() { f.Store(ir.ImmF(0), ir.ImmI(ghostL)) },
		)
		// q = A p (CSR spmv with ghost translation).
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			acc := f.CF(0)
			s := f.NewReg()
			s3 := f.Mul(ir.R(i), ir.ImmI(3))
			f.For(s, ir.R(s3), ir.R(f.Add(ir.R(s3), ir.ImmI(3))), func() {
				col := f.Ld(ir.ImmI(colsA), ir.R(s))
				val := f.Ld(ir.ImmI(valsA), ir.R(s))
				j := f.Sub(ir.R(col), ir.R(lo))
				pval := f.NewReg()
				f.IfElse(ir.R(f.ICmp(ir.ICmpSLT, ir.R(j), ir.ImmI(0))),
					func() { f.Mov(pval, ir.R(f.Load(ir.ImmI(ghostL)))) },
					func() {
						f.IfElse(ir.R(f.ICmp(ir.ICmpSGE, ir.R(j), ir.ImmI(n))),
							func() { f.Mov(pval, ir.R(f.Load(ir.ImmI(ghostR)))) },
							func() { f.Mov(pval, ir.R(f.Ld(ir.ImmI(pV), ir.R(j)))) },
						)
					},
				)
				f.Op3(ir.FAdd, acc, ir.R(acc), ir.R(f.FMul(ir.R(val), ir.R(pval))))
			})
			f.St(ir.R(acc), ir.ImmI(qV), ir.R(i))
		})
		// alpha = rr / (p.q); x += alpha p; r -= alpha q.
		pq := f.NewReg()
		f.Call("gdot", []ir.Reg{pq}, ir.ImmI(pV), ir.ImmI(qV))
		alpha := f.FDiv(ir.R(rr), ir.R(pq))
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			xi := f.Ld(ir.ImmI(xV), ir.R(i))
			pi := f.Ld(ir.ImmI(pV), ir.R(i))
			f.St(ir.R(f.FAdd(ir.R(xi), ir.R(f.FMul(ir.R(alpha), ir.R(pi))))), ir.ImmI(xV), ir.R(i))
			ri := f.Ld(ir.ImmI(rV), ir.R(i))
			qi := f.Ld(ir.ImmI(qV), ir.R(i))
			f.St(ir.R(f.FSub(ir.R(ri), ir.R(f.FMul(ir.R(alpha), ir.R(qi))))), ir.ImmI(rV), ir.R(i))
		})
		rrNew := f.NewReg()
		f.Call("gdot", []ir.Reg{rrNew}, ir.ImmI(rV), ir.ImmI(rV))
		beta := f.FDiv(ir.R(rrNew), ir.R(rr))
		f.Mov(rr, ir.R(rrNew))
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			ri := f.Ld(ir.ImmI(rV), ir.R(i))
			pi := f.Ld(ir.ImmI(pV), ir.R(i))
			f.St(ir.R(f.FAdd(ir.R(ri), ir.R(f.FMul(ir.R(beta), ir.R(pi))))), ir.ImmI(pV), ir.R(i))
		})
		f.Op3(ir.Add, iters, ir.R(iters), ir.ImmI(1))
	})
	f.Bind(brk)
	f.Iterations(ir.R(iters))

	// Outputs: local solution checksum per rank.
	xsum := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.Op3(ir.FAdd, xsum, ir.R(xsum), ir.R(f.Ld(ir.ImmI(xV), ir.R(i))))
	})
	f.OutputF(ir.R(xsum))
	f.Ret()
	return b.Build()
}

// Reference replays assembly and CG in pure Go with identical operation
// order, returning the expected outputs. It also returns the iteration
// count through ReferenceIterations.
func (a FE) Reference(p Params) ([]float64, error) {
	out, _, err := a.referenceFull(p)
	return out, err
}

// ReferenceIterations returns the fault-free CG iteration count.
func (a FE) ReferenceIterations(p Params) (int64, error) {
	_, it, err := a.referenceFull(p)
	return it, err
}

func (a FE) referenceFull(p Params) ([]float64, int64, error) {
	if err := p.validate(); err != nil {
		return nil, 0, err
	}
	n, R := p.Size, p.Ranks
	N := n * R
	// Assembled per-rank CSR (3 slots per row).
	vals := make([][]float64, R)
	cols := make([][]int, R)
	rhs := make([][]float64, R)
	for r := 0; r < R; r++ {
		vals[r] = make([]float64, 3*n)
		cols[r] = make([]int, 3*n)
		rhs[r] = make([]float64, n)
		lo := r * n
		for i := 0; i < n; i++ {
			g := lo + i
			cm, cp := g-1, g+1
			if g == 0 {
				cm = g
			}
			if g == N-1 {
				cp = g
			}
			cols[r][3*i] = cm
			cols[r][3*i+1] = g
			cols[r][3*i+2] = cp
		}
		elemLo, elemHi := lo, lo+n
		if r > 0 {
			elemLo = lo - 1
		}
		if r == R-1 {
			elemHi--
		}
		for g := elemLo; g < elemHi; g++ {
			if li := g - lo; li >= 0 && li < n {
				vals[r][3*li+1] += 1
				vals[r][3*li+2] += -1
			}
			if lj := g + 1 - lo; lj >= 0 && lj < n {
				vals[r][3*lj+1] += 1
				vals[r][3*lj] += -1
			}
		}
		for i := 0; i < n; i++ {
			g := lo + i
			if g == 0 || g == N-1 {
				vals[r][3*i] = 0
				vals[r][3*i+1] = 1
				vals[r][3*i+2] = 0
				rhs[r][i] = 0
			} else {
				rhs[r][i] = 1
			}
		}
	}

	x := make([][]float64, R)
	rv := make([][]float64, R)
	pv := make([][]float64, R)
	qv := make([][]float64, R)
	for r := 0; r < R; r++ {
		x[r] = make([]float64, n)
		rv[r] = append([]float64(nil), rhs[r]...)
		pv[r] = append([]float64(nil), rhs[r]...)
		qv[r] = make([]float64, n)
	}
	gdot := func(a, b [][]float64) float64 {
		tot := 0.0
		for r := 0; r < R; r++ {
			local := 0.0
			for i := 0; i < n; i++ {
				local += a[r][i] * b[r][i]
			}
			tot += local
		}
		return tot
	}
	rr := gdot(rv, rv)
	iters := int64(0)
	for k := 0; k < p.Steps; k++ {
		if rr < feTol {
			break
		}
		// Ghost snapshot of p boundary values.
		gl := make([]float64, R)
		gr := make([]float64, R)
		for r := 0; r < R; r++ {
			if r > 0 {
				gl[r] = pv[r-1][n-1]
			}
			if r < R-1 {
				gr[r] = pv[r+1][0]
			}
		}
		for r := 0; r < R; r++ {
			lo := r * n
			for i := 0; i < n; i++ {
				acc := 0.0
				for s := 3 * i; s < 3*i+3; s++ {
					col := cols[r][s]
					val := vals[r][s]
					j := col - lo
					var pval float64
					switch {
					case j < 0:
						pval = gl[r]
					case j >= n:
						pval = gr[r]
					default:
						pval = pv[r][j]
					}
					acc += val * pval
				}
				qv[r][i] = acc
			}
		}
		pq := gdot(pv, qv)
		alpha := rr / pq
		for r := 0; r < R; r++ {
			for i := 0; i < n; i++ {
				x[r][i] = x[r][i] + alpha*pv[r][i]
				rv[r][i] = rv[r][i] - alpha*qv[r][i]
			}
		}
		rrNew := gdot(rv, rv)
		beta := rrNew / rr
		rr = rrNew
		for r := 0; r < R; r++ {
			for i := 0; i < n; i++ {
				pv[r][i] = rv[r][i] + beta*pv[r][i]
			}
		}
		iters++
	}
	if rr >= feTol {
		// The fault-free solve must converge; otherwise the workload is
		// miscalibrated.
		return nil, iters, errFaultFreeAbort("fe (no convergence)", int(iters))
	}
	var out []float64
	for r := 0; r < R; r++ {
		xsum := 0.0
		for i := 0; i < n; i++ {
			xsum += x[r][i]
		}
		out = append(out, xsum)
	}
	return out, iters, nil
}
