package apps

import (
	"math"

	"repro/internal/ir"
)

// AMG is the AMG2013 proxy: a multigrid solver for a variable-coefficient
// 1-D Laplace problem whose execution shows the paper's three phases
// (Fig. 7b): *init* allocates and fills the fine-grid problem, *setup*
// constructs the coarse-level hierarchy (Galerkin-style coefficient
// coarsening, one heap allocation burst per level), and *solve* runs
// V-cycles of damped-Jacobi smoothing with halo exchange on the finest
// level and a global residual-norm reduction per cycle. Level arrays are
// reached through pointer slots held in memory, so a corrupted pointer
// crashes realistically. An internal divergence check aborts when the
// residual norm explodes or becomes NaN.
type AMG struct{}

// NewAMG returns the AMG2013 proxy.
func NewAMG() App { return AMG{} }

// Name identifies the paper application this proxies.
func (AMG) Name() string { return "AMG2013" }

// DefaultParams sizes a campaign run. Size must be divisible by 4.
func (AMG) DefaultParams() Params { return Params{Ranks: 8, Size: 32, Steps: 18} }

// TestParams sizes a fast run.
func (AMG) TestParams() Params { return Params{Ranks: 4, Size: 16, Steps: 10} }

// AMG constants.
const (
	amgLevels = 3
	amgOmega  = 0.8
	amgTol    = 1e-12
)

// AMG message tags.
const (
	amgTagLeftward  = 1
	amgTagRightward = 2
)

// amgSweeps[l] is the smoothing sweep count at level l on the way down;
// the coarsest level gets extra sweeps in place of a direct solve.
var amgSweeps = [amgLevels]int{2, 2, 8}

// Build constructs the per-rank IR program.
func (a AMG) Build(p Params) (*ir.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	if p.Size%4 != 0 {
		p.Size = (p.Size/4 + 1) * 4
	}
	n := int64(p.Size)
	b := ir.NewBuilder()
	ptrU := b.Global("ptrU", amgLevels)
	ptrF := b.Global("ptrF", amgLevels)
	ptrC := b.Global("ptrC", amgLevels)
	ptrR := b.Global("ptrR", amgLevels)
	ghostL := b.Global("ghostL", 1)
	ghostR := b.Global("ghostR", 1)
	sendSlot := b.Global("sendSlot", 1)
	redSlot := b.Global("redSlot", 1)

	lvlSize := func(l int) int64 { return n >> l }

	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	size := f.MPISize()
	lo := f.Mul(ir.R(rank), ir.ImmI(n))
	hasL := f.ICmp(ir.ICmpSGT, ir.R(rank), ir.ImmI(0))
	hasR := f.ICmp(ir.ICmpSLT, ir.R(rank), ir.R(f.Sub(ir.R(size), ir.ImmI(1))))
	i := f.NewReg()

	loadPtr := func(slotBase int64, l int) ir.Reg {
		return f.Load(ir.ImmI(slotBase + int64(l)))
	}

	// exchangeHalo refreshes ghostL/ghostR with the finest-level boundary
	// values of u; the global domain boundary is Dirichlet zero.
	exchangeHalo := func() {
		u0 := loadPtr(ptrU, 0)
		f.If(ir.R(hasL), func() {
			f.MPISend(ir.R(u0), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(amgTagLeftward))
		})
		f.If(ir.R(hasR), func() {
			f.MPISend(ir.R(f.Add(ir.R(u0), ir.ImmI(n-1))), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(amgTagRightward))
		})
		f.IfElse(ir.R(hasR),
			func() {
				f.MPIRecv(ir.ImmI(ghostR), ir.ImmI(1), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(amgTagLeftward))
			},
			func() { f.Store(ir.ImmF(0), ir.ImmI(ghostR)) },
		)
		f.IfElse(ir.R(hasL),
			func() {
				f.MPIRecv(ir.ImmI(ghostL), ir.ImmI(1), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(amgTagRightward))
			},
			func() { f.Store(ir.ImmF(0), ir.ImmI(ghostL)) },
		)
	}

	// smooth emits one damped red-black Gauss-Seidel sweep at level l,
	// in place (halo-coupled at level 0, zero-Dirichlet subdomain
	// boundaries on coarse levels). The halo is refreshed before each
	// color so neighbor updates interleave as they do in a distributed
	// red-black sweep.
	smooth := func(l int) {
		m := lvlSize(l)
		for color := int64(0); color < 2; color++ {
			if l == 0 {
				exchangeHalo()
			}
			u := loadPtr(ptrU, l)
			fr := loadPtr(ptrF, l)
			c := loadPtr(ptrC, l)
			kmax := (m - color + 1) / 2
			k := f.NewReg()
			f.For(k, ir.ImmI(0), ir.ImmI(kmax), func() {
				idx := f.Add(ir.R(f.Mul(ir.R(k), ir.ImmI(2))), ir.ImmI(color))
				left := f.NewReg()
				f.IfElse(ir.R(f.ICmp(ir.ICmpEQ, ir.R(idx), ir.ImmI(0))),
					func() {
						if l == 0 {
							f.Mov(left, ir.R(f.Load(ir.ImmI(ghostL))))
						} else {
							f.Mov(left, ir.ImmF(0))
						}
					},
					func() { f.Mov(left, ir.R(f.Load(ir.R(f.Add(ir.R(u), ir.R(f.Sub(ir.R(idx), ir.ImmI(1)))))))) },
				)
				right := f.NewReg()
				f.IfElse(ir.R(f.ICmp(ir.ICmpEQ, ir.R(idx), ir.ImmI(m-1))),
					func() {
						if l == 0 {
							f.Mov(right, ir.R(f.Load(ir.ImmI(ghostR))))
						} else {
							f.Mov(right, ir.ImmF(0))
						}
					},
					func() { f.Mov(right, ir.R(f.Load(ir.R(f.Add(ir.R(u), ir.R(f.Add(ir.R(idx), ir.ImmI(1)))))))) },
				)
				fi := f.Load(ir.R(f.Add(ir.R(fr), ir.R(idx))))
				ci := f.Load(ir.R(f.Add(ir.R(c), ir.R(idx))))
				ui := f.Load(ir.R(f.Add(ir.R(u), ir.R(idx))))
				avg := f.FMul(ir.ImmF(0.5), ir.R(f.FAdd(ir.R(f.FAdd(ir.R(f.FDiv(ir.R(fi), ir.R(ci))), ir.R(left))), ir.R(right))))
				unew := f.FAdd(ir.R(f.FMul(ir.ImmF(amgOmega), ir.R(avg))), ir.R(f.FMul(ir.ImmF(1-amgOmega), ir.R(ui))))
				f.Store(ir.R(unew), ir.R(f.Add(ir.R(u), ir.R(idx))))
			})
		}
	}

	// residual emits r = f - A u at level l (A u = c*((2u - left) - right)).
	residual := func(l int) {
		m := lvlSize(l)
		if l == 0 {
			exchangeHalo()
		}
		u := loadPtr(ptrU, l)
		fr := loadPtr(ptrF, l)
		c := loadPtr(ptrC, l)
		res := loadPtr(ptrR, l)
		f.For(i, ir.ImmI(0), ir.ImmI(m), func() {
			left := f.NewReg()
			f.IfElse(ir.R(f.ICmp(ir.ICmpEQ, ir.R(i), ir.ImmI(0))),
				func() {
					if l == 0 {
						f.Mov(left, ir.R(f.Load(ir.ImmI(ghostL))))
					} else {
						f.Mov(left, ir.ImmF(0))
					}
				},
				func() { f.Mov(left, ir.R(f.Load(ir.R(f.Add(ir.R(u), ir.R(f.Sub(ir.R(i), ir.ImmI(1)))))))) },
			)
			right := f.NewReg()
			f.IfElse(ir.R(f.ICmp(ir.ICmpEQ, ir.R(i), ir.ImmI(m-1))),
				func() {
					if l == 0 {
						f.Mov(right, ir.R(f.Load(ir.ImmI(ghostR))))
					} else {
						f.Mov(right, ir.ImmF(0))
					}
				},
				func() { f.Mov(right, ir.R(f.Load(ir.R(f.Add(ir.R(u), ir.R(f.Add(ir.R(i), ir.ImmI(1)))))))) },
			)
			ui := f.Load(ir.R(f.Add(ir.R(u), ir.R(i))))
			ci := f.Load(ir.R(f.Add(ir.R(c), ir.R(i))))
			fi := f.Load(ir.R(f.Add(ir.R(fr), ir.R(i))))
			au := f.FMul(ir.R(ci), ir.R(f.FSub(ir.R(f.FSub(ir.R(f.FMul(ir.ImmF(2), ir.R(ui))), ir.R(left))), ir.R(right))))
			f.Store(ir.R(f.FSub(ir.R(fi), ir.R(au))), ir.R(f.Add(ir.R(res), ir.R(i))))
		})
	}

	// --- Init phase ------------------------------------------------------
	for l := 0; l < amgLevels; l++ {
		m := lvlSize(l)
		for _, slot := range []int64{ptrU, ptrF, ptrC, ptrR} {
			f.Store(ir.R(f.Alloc(ir.ImmI(m))), ir.ImmI(slot+int64(l)))
		}
	}
	{
		u0 := loadPtr(ptrU, 0)
		f0 := loadPtr(ptrF, 0)
		c0 := loadPtr(ptrC, 0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			gi := f.SIToFP(ir.R(f.Add(ir.R(lo), ir.R(i))))
			f.Store(ir.ImmF(0), ir.R(f.Add(ir.R(u0), ir.R(i))))
			f.Store(ir.R(f.FAdd(ir.R(f.Sin(ir.R(f.FMul(ir.R(gi), ir.ImmF(0.1))))), ir.ImmF(1))), ir.R(f.Add(ir.R(f0), ir.R(i))))
			f.Store(ir.R(f.FAdd(ir.ImmF(1), ir.R(f.FMul(ir.ImmF(0.001), ir.R(gi))))), ir.R(f.Add(ir.R(c0), ir.R(i))))
		})
	}
	// --- Setup phase: Galerkin-style coefficient coarsening --------------
	for l := 1; l < amgLevels; l++ {
		m := lvlSize(l)
		cPrev := loadPtr(ptrC, l-1)
		cCur := loadPtr(ptrC, l)
		uCur := loadPtr(ptrU, l)
		fCur := loadPtr(ptrF, l)
		f.For(i, ir.ImmI(0), ir.ImmI(m), func() {
			i2 := f.Mul(ir.R(i), ir.ImmI(2))
			a0 := f.Load(ir.R(f.Add(ir.R(cPrev), ir.R(i2))))
			a1 := f.Load(ir.R(f.Add(ir.R(cPrev), ir.R(f.Add(ir.R(i2), ir.ImmI(1))))))
			f.Store(ir.R(f.FMul(ir.R(f.FAdd(ir.R(a0), ir.R(a1))), ir.ImmF(0.5))), ir.R(f.Add(ir.R(cCur), ir.R(i))))
			f.Store(ir.ImmF(0), ir.R(f.Add(ir.R(uCur), ir.R(i))))
			f.Store(ir.ImmF(0), ir.R(f.Add(ir.R(fCur), ir.R(i))))
		})
	}

	// residNorm computes the global L2 norm of the finest residual.
	residNorm := func() ir.Reg {
		residual(0)
		r0 := loadPtr(ptrR, 0)
		local := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			ri := f.Load(ir.R(f.Add(ir.R(r0), ir.R(i))))
			f.Op3(ir.FAdd, local, ir.R(local), ir.R(f.FMul(ir.R(ri), ir.R(ri))))
		})
		f.Store(ir.R(local), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
		return f.Sqrt(ir.R(f.Load(ir.ImmI(redSlot))))
	}

	// --- Solve phase: V-cycles -------------------------------------------
	res0 := residNorm()
	bound := f.FAdd(ir.R(f.FMul(ir.R(res0), ir.ImmF(1e6))), ir.ImmF(1))
	iters := f.CI(0)
	rn := f.NewReg()
	f.Mov(rn, ir.R(res0))
	s := f.NewReg()
	brk := f.NewLabel()
	f.For(s, ir.ImmI(0), ir.ImmI(int64(p.Steps)), func() {
		f.Tick(ir.R(s))
		// Down sweep.
		for l := 0; l < amgLevels-1; l++ {
			for sw := 0; sw < amgSweeps[l]; sw++ {
				smooth(l)
			}
			residual(l)
			// Restrict residual to the next level's RHS, zero the
			// correction.
			m := lvlSize(l + 1)
			rl := loadPtr(ptrR, l)
			fn := loadPtr(ptrF, l+1)
			un := loadPtr(ptrU, l+1)
			f.For(i, ir.ImmI(0), ir.ImmI(m), func() {
				i2 := f.Mul(ir.R(i), ir.ImmI(2))
				r0v := f.Load(ir.R(f.Add(ir.R(rl), ir.R(i2))))
				r1v := f.Load(ir.R(f.Add(ir.R(rl), ir.R(f.Add(ir.R(i2), ir.ImmI(1))))))
				f.Store(ir.R(f.FMul(ir.R(f.FAdd(ir.R(r0v), ir.R(r1v))), ir.ImmF(0.5))), ir.R(f.Add(ir.R(fn), ir.R(i))))
				f.Store(ir.ImmF(0), ir.R(f.Add(ir.R(un), ir.R(i))))
			})
		}
		for sw := 0; sw < amgSweeps[amgLevels-1]; sw++ {
			smooth(amgLevels - 1)
		}
		// Up sweep.
		for l := amgLevels - 2; l >= 0; l-- {
			m := lvlSize(l + 1)
			ul := loadPtr(ptrU, l)
			un := loadPtr(ptrU, l+1)
			f.For(i, ir.ImmI(0), ir.ImmI(m), func() {
				corr := f.Load(ir.R(f.Add(ir.R(un), ir.R(i))))
				i2 := f.Mul(ir.R(i), ir.ImmI(2))
				a0 := f.Add(ir.R(ul), ir.R(i2))
				f.Store(ir.R(f.FAdd(ir.R(f.Load(ir.R(a0))), ir.R(corr))), ir.R(a0))
				a1 := f.Add(ir.R(ul), ir.R(f.Add(ir.R(i2), ir.ImmI(1))))
				f.Store(ir.R(f.FAdd(ir.R(f.Load(ir.R(a1))), ir.R(corr))), ir.R(a1))
			})
			smooth(l)
		}
		f.Mov(rn, ir.R(residNorm()))
		bad := f.Or(
			ir.R(f.FCmp(ir.FCmpNE, ir.R(rn), ir.R(rn))),
			ir.R(f.FCmp(ir.FCmpGT, ir.R(rn), ir.R(bound))),
		)
		f.If(ir.R(bad), func() { f.MPIAbort(ir.ImmI(9)) })
		f.Op3(ir.Add, iters, ir.R(iters), ir.ImmI(1))
		f.Bnz(ir.R(f.FCmp(ir.FCmpLT, ir.R(rn), ir.ImmF(amgTol))), brk)
	})
	f.Bind(brk)
	f.Iterations(ir.R(iters))

	// Outputs: local solution checksum; rank 0 adds the final residual
	// norm scaled into a robust magnitude (log10 of norm).
	usum := f.CF(0)
	{
		u0 := loadPtr(ptrU, 0)
		f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
			f.Op3(ir.FAdd, usum, ir.R(usum), ir.R(f.Load(ir.R(f.Add(ir.R(u0), ir.R(i))))))
		})
	}
	f.OutputF(ir.R(usum))
	f.Ret()
	return b.Build()
}

// Reference replays the multigrid model in pure Go with identical
// operation order.
func (a AMG) Reference(p Params) ([]float64, error) {
	out, _, err := a.referenceWithResiduals(p)
	return out, err
}

// ReferenceResiduals returns the residual norm after each V-cycle of the
// fault-free execution (for convergence testing).
func (a AMG) ReferenceResiduals(p Params) ([]float64, error) {
	_, rns, err := a.referenceWithResiduals(p)
	return rns, err
}

func (a AMG) referenceWithResiduals(p Params) ([]float64, []float64, error) {
	if err := p.validate(); err != nil {
		return nil, nil, err
	}
	if p.Size%4 != 0 {
		p.Size = (p.Size/4 + 1) * 4
	}
	n, R := p.Size, p.Ranks
	type rankState struct {
		u, f, c, r [amgLevels][]float64
	}
	st := make([]rankState, R)
	for r := 0; r < R; r++ {
		for l := 0; l < amgLevels; l++ {
			m := n >> l
			st[r].u[l] = make([]float64, m)
			st[r].f[l] = make([]float64, m)
			st[r].c[l] = make([]float64, m)
			st[r].r[l] = make([]float64, m)
		}
		lo := r * n
		for i := 0; i < n; i++ {
			gi := float64(lo + i)
			st[r].f[0][i] = math.Sin(gi*0.1) + 1
			st[r].c[0][i] = 1 + 0.001*gi
		}
		for l := 1; l < amgLevels; l++ {
			m := n >> l
			for i := 0; i < m; i++ {
				st[r].c[l][i] = (st[r].c[l-1][2*i] + st[r].c[l-1][2*i+1]) * 0.5
			}
		}
	}

	// ghost snapshots for level 0 (all ranks exchange in lockstep).
	ghosts := func() ([]float64, []float64) {
		gl := make([]float64, R)
		gr := make([]float64, R)
		for r := 0; r < R; r++ {
			if r > 0 {
				gl[r] = st[r-1].u[0][n-1]
			}
			if r < R-1 {
				gr[r] = st[r+1].u[0][0]
			}
		}
		return gl, gr
	}
	smooth := func(l int) {
		m := n >> l
		for color := 0; color < 2; color++ {
			var gl, gr []float64
			if l == 0 {
				gl, gr = ghosts()
			}
			for r := 0; r < R; r++ {
				s := &st[r]
				for i := color; i < m; i += 2 {
					var left, right float64
					if i == 0 {
						if l == 0 {
							left = gl[r]
						}
					} else {
						left = s.u[l][i-1]
					}
					if i == m-1 {
						if l == 0 {
							right = gr[r]
						}
					} else {
						right = s.u[l][i+1]
					}
					avg := 0.5 * ((s.f[l][i]/s.c[l][i] + left) + right)
					s.u[l][i] = amgOmega*avg + (1-amgOmega)*s.u[l][i]
				}
			}
		}
	}
	residual := func(l int) {
		var gl, gr []float64
		if l == 0 {
			gl, gr = ghosts()
		}
		m := n >> l
		for r := 0; r < R; r++ {
			s := &st[r]
			for i := 0; i < m; i++ {
				var left, right float64
				if i == 0 {
					if l == 0 {
						left = gl[r]
					}
				} else {
					left = s.u[l][i-1]
				}
				if i == m-1 {
					if l == 0 {
						right = gr[r]
					}
				} else {
					right = s.u[l][i+1]
				}
				au := s.c[l][i] * ((2*s.u[l][i] - left) - right)
				s.r[l][i] = s.f[l][i] - au
			}
		}
	}
	residNorm := func() float64 {
		residual(0)
		tot := 0.0
		for r := 0; r < R; r++ {
			local := 0.0
			for i := 0; i < n; i++ {
				local += st[r].r[0][i] * st[r].r[0][i]
			}
			tot += local
		}
		return math.Sqrt(tot)
	}

	res0 := residNorm()
	bound := res0*1e6 + 1
	rn := res0
	var rns []float64
	for s := 0; s < p.Steps; s++ {
		for l := 0; l < amgLevels-1; l++ {
			for sw := 0; sw < amgSweeps[l]; sw++ {
				smooth(l)
			}
			residual(l)
			m := n >> (l + 1)
			for r := 0; r < R; r++ {
				for i := 0; i < m; i++ {
					st[r].f[l+1][i] = (st[r].r[l][2*i] + st[r].r[l][2*i+1]) * 0.5
					st[r].u[l+1][i] = 0
				}
			}
		}
		for sw := 0; sw < amgSweeps[amgLevels-1]; sw++ {
			smooth(amgLevels - 1)
		}
		for l := amgLevels - 2; l >= 0; l-- {
			m := n >> (l + 1)
			for r := 0; r < R; r++ {
				for i := 0; i < m; i++ {
					corr := st[r].u[l+1][i]
					st[r].u[l][2*i] += corr
					st[r].u[l][2*i+1] += corr
				}
			}
			smooth(l)
		}
		rn = residNorm()
		rns = append(rns, rn)
		if rn != rn || rn > bound {
			return nil, nil, errFaultFreeAbort("amg", s)
		}
		if rn < amgTol {
			break
		}
	}

	var out []float64
	for r := 0; r < R; r++ {
		usum := 0.0
		for i := 0; i < n; i++ {
			usum += st[r].u[0][i]
		}
		out = append(out, usum)
	}
	return out, rns, nil
}
