package apps

import (
	"math"

	"repro/internal/ir"
)

// MCB is the Monte Carlo Benchmark proxy: particles are born from a source,
// travel with constant speed, scatter, are absorbed into path-length
// tallies, and are buffered and shipped to the neighbor rank when they
// cross the domain boundary — the paper's description of MCB §4.3. The
// random walk uses an in-IR linear congruential generator, so a single bit
// flip anywhere in the particle state rapidly decorrelates the whole
// simulation; the embarrassingly parallel mixing gives MCB the highest
// fault propagation speed of the five applications (paper Table 2).
type MCB struct{}

// NewMCB returns the MCB proxy.
func NewMCB() App { return MCB{} }

// Name identifies the paper application this proxies.
func (MCB) Name() string { return "MCB" }

// DefaultParams sizes a campaign run. Size is the tally cell count per
// rank.
func (MCB) DefaultParams() Params { return Params{Ranks: 8, Size: 32, Steps: 14, Seed: 2015} }

// TestParams sizes a fast run.
func (MCB) TestParams() Params { return Params{Ranks: 4, Size: 16, Steps: 8, Seed: 7} }

// MCB constants. Transport samples exponential distances to collision
// (mean free path mcbMFP) against a per-step path budget, so the number of
// RNG draws a particle consumes depends continuously on its state — the
// mechanism that makes Monte Carlo transport decorrelate explosively after
// a perturbation and gives MCB the highest fault propagation speed (paper
// Table 2).
const (
	mcbLCGMul   = 6364136223846793005
	mcbLCGAdd   = 1442695040888963407
	mcbBudget   = 0.2  // path length traveled per particle per step
	mcbPAbsorb  = 0.15 // absorption probability per collision
	mcbCapMul   = 2    // particle capacity = capMul * Size
	mcbSpawnDiv = 4    // spawn Size/spawnDiv particles per step
	mcbMaxXfer  = 16   // boundary-crossing buffer capacity per side
)

// MCB message tags.
const (
	mcbTagLeftward  = 1
	mcbTagRightward = 2
)

// mcbMFPTable holds the mean free path of the four materials tiled across
// tally cells (heterogeneous medium): the collision distance a particle
// samples depends on the cell it is in, so a perturbed position changes the
// number of RNG draws and decorrelates the whole rank's random walk.
func mcbMFPTable() []float64 { return []float64{0.08, 0.12, 0.1, 0.06} }

// Build constructs the per-rank IR program.
func (m MCB) Build(p Params) (*ir.Program, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n := int64(p.Size)
	cap64 := mcbCapMul * n
	spawn := n / mcbSpawnDiv
	if spawn < 1 {
		spawn = 1
	}
	bufWords := int64(1 + 3*mcbMaxXfer)
	b := ir.NewBuilder()
	pxA := b.Global("px", cap64)
	pdA := b.Global("pd", cap64)
	pwA := b.Global("pw", cap64)
	tallyA := b.Global("tally", n)
	sendL := b.Global("sendL", bufWords)
	sendR := b.Global("sendR", bufWords)
	recvBufL := b.Global("recvL", bufWords)
	recvBufR := b.Global("recvR", bufWords)
	mfpA := b.Global("mfptab", 4)
	b.GlobalInitF("mfptab", mcbMFPTable())
	stateA := b.Global("rngstate", 1)
	sendSlot := b.Global("sendSlot", 1)
	redSlot := b.Global("redSlot", 1)

	// lcgu draws a uniform [0,1) from the global LCG state.
	{
		f := b.Func("lcgu", 0, 1)
		s := f.Load(ir.ImmI(stateA))
		ns := f.Add(ir.R(f.Mul(ir.R(s), ir.ImmI(mcbLCGMul))), ir.ImmI(mcbLCGAdd))
		f.Store(ir.R(ns), ir.ImmI(stateA))
		mant := f.LShr(ir.R(ns), ir.ImmI(11))
		f.Ret(ir.R(f.FMul(ir.R(f.SIToFP(ir.R(mant))), ir.ImmF(0x1p-53))))
	}

	f := b.Func("main", 0, 0)
	rank := f.MPIRank()
	size := f.MPISize()
	hasL := f.ICmp(ir.ICmpSGT, ir.R(rank), ir.ImmI(0))
	hasR := f.ICmp(ir.ICmpSLT, ir.R(rank), ir.R(f.Sub(ir.R(size), ir.ImmI(1))))
	loF := f.SIToFP(ir.R(rank))
	hiF := f.FAdd(ir.R(loF), ir.ImmF(1))
	i := f.NewReg()

	// Seed the per-rank RNG stream.
	seedBase := f.Add(
		ir.R(f.Mul(ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(-0x61c8864680b583eb))),
		ir.ImmI(int64(p.Seed)),
	)
	f.Store(ir.R(seedBase), ir.ImmI(stateA))
	// Clear particle and tally state.
	f.For(i, ir.ImmI(0), ir.ImmI(cap64), func() {
		f.St(ir.ImmF(0), ir.ImmI(pxA), ir.R(i))
		f.St(ir.ImmF(1), ir.ImmI(pdA), ir.R(i))
		f.St(ir.ImmF(0), ir.ImmI(pwA), ir.R(i))
	})
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.St(ir.ImmF(0), ir.ImmI(tallyA), ir.R(i))
	})

	weightReg := f.NewReg()
	f.Mov(weightReg, ir.ImmF(0))
	s := f.NewReg()
	f.For(s, ir.ImmI(0), ir.ImmI(int64(p.Steps)), func() {
		f.Tick(ir.R(s))
		// Source: spawn particles into free slots.
		spawned := f.CI(0)
		f.For(i, ir.ImmI(0), ir.ImmI(cap64), func() {
			canSpawn := f.And(
				ir.R(f.ICmp(ir.ICmpSLT, ir.R(spawned), ir.ImmI(spawn))),
				ir.R(f.FCmp(ir.FCmpEQ, ir.R(f.Ld(ir.ImmI(pwA), ir.R(i))), ir.ImmF(0))),
			)
			f.If(ir.R(canSpawn), func() {
				u := f.NewReg()
				f.Call("lcgu", []ir.Reg{u})
				f.St(ir.R(f.FAdd(ir.R(loF), ir.R(u))), ir.ImmI(pxA), ir.R(i))
				ud := f.NewReg()
				f.Call("lcgu", []ir.Reg{ud})
				dir := f.Select(ir.R(f.FCmp(ir.FCmpLT, ir.R(ud), ir.ImmF(0.5))), ir.ImmF(-1), ir.ImmF(1))
				f.St(ir.R(dir), ir.ImmI(pdA), ir.R(i))
				f.St(ir.ImmF(1), ir.ImmI(pwA), ir.R(i))
				f.Op3(ir.Add, spawned, ir.R(spawned), ir.ImmI(1))
			})
		})
		// Transport: per particle, sample exponential distances to
		// collision against the step's path budget; tally path lengths,
		// absorb or scatter at collisions, buffer boundary crossers.
		countL := f.CI(0)
		countR := f.CI(0)
		f.For(i, ir.ImmI(0), ir.ImmI(cap64), func() {
			w := f.NewReg()
			f.Mov(w, ir.R(f.Ld(ir.ImmI(pwA), ir.R(i))))
			f.If(ir.R(f.FCmp(ir.FCmpGT, ir.R(w), ir.ImmF(0))), func() {
				d := f.NewReg()
				f.Mov(d, ir.R(f.Ld(ir.ImmI(pdA), ir.R(i))))
				x := f.NewReg()
				f.Mov(x, ir.R(f.Ld(ir.ImmI(pxA), ir.R(i))))
				gone := f.CI(0)
				rem := f.CF(mcbBudget)
				f.While(func() ir.Operand {
					c1 := f.FCmp(ir.FCmpGT, ir.R(rem), ir.ImmF(0))
					c2 := f.ICmp(ir.ICmpEQ, ir.R(gone), ir.ImmI(0))
					c3 := f.FCmp(ir.FCmpGT, ir.R(w), ir.ImmF(0))
					return ir.R(f.And(ir.R(f.And(ir.R(c1), ir.R(c2))), ir.R(c3)))
				}, func() {
					// The sampled distance depends on the material of the
					// particle's current cell.
					cur := f.NewReg()
					f.Mov(cur, ir.R(f.FPToSI(ir.R(f.FMul(ir.R(f.FSub(ir.R(x), ir.R(loF))), ir.R(f.SIToFP(ir.ImmI(n))))))))
					f.If(ir.R(f.ICmp(ir.ICmpSLT, ir.R(cur), ir.ImmI(0))), func() { f.Mov(cur, ir.ImmI(0)) })
					f.If(ir.R(f.ICmp(ir.ICmpSGE, ir.R(cur), ir.ImmI(n))), func() { f.Mov(cur, ir.ImmI(n-1)) })
					mfp := f.Ld(ir.ImmI(mfpA), ir.R(f.And(ir.R(cur), ir.ImmI(3))))
					u := f.NewReg()
					f.Call("lcgu", []ir.Reg{u})
					dist := f.FMul(ir.R(f.FSub(ir.ImmF(0), ir.R(f.Log(ir.R(u))))), ir.R(mfp))
					seg := f.FMin(ir.R(dist), ir.R(rem))
					f.Mov(x, ir.R(f.FAdd(ir.R(x), ir.R(f.FMul(ir.R(d), ir.R(seg))))))
					f.If(ir.R(f.FCmp(ir.FCmpLT, ir.R(x), ir.R(loF))), func() {
						f.IfElse(ir.R(hasL),
							func() {
								// Buffer for the left neighbor (drop on overflow).
								f.If(ir.R(f.ICmp(ir.ICmpSLT, ir.R(countL), ir.ImmI(mcbMaxXfer))), func() {
									base := f.Add(ir.ImmI(sendL+1), ir.R(f.Mul(ir.R(countL), ir.ImmI(3))))
									f.Store(ir.R(x), ir.R(base))
									f.Store(ir.R(d), ir.R(f.Add(ir.R(base), ir.ImmI(1))))
									f.Store(ir.R(w), ir.R(f.Add(ir.R(base), ir.ImmI(2))))
									f.Op3(ir.Add, countL, ir.R(countL), ir.ImmI(1))
								})
								f.St(ir.ImmF(0), ir.ImmI(pwA), ir.R(i))
								f.Mov(w, ir.ImmF(0))
								f.Mov(gone, ir.ImmI(1))
							},
							func() {
								// Reflect at the global left wall.
								f.Mov(x, ir.R(f.FAdd(ir.R(loF), ir.R(f.FSub(ir.R(loF), ir.R(x))))))
								f.Mov(d, ir.R(f.FSub(ir.ImmF(0), ir.R(d))))
							},
						)
					})
					f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(gone), ir.ImmI(0))), func() {
						f.If(ir.R(f.FCmp(ir.FCmpGE, ir.R(x), ir.R(hiF))), func() {
							f.IfElse(ir.R(hasR),
								func() {
									f.If(ir.R(f.ICmp(ir.ICmpSLT, ir.R(countR), ir.ImmI(mcbMaxXfer))), func() {
										base := f.Add(ir.ImmI(sendR+1), ir.R(f.Mul(ir.R(countR), ir.ImmI(3))))
										f.Store(ir.R(x), ir.R(base))
										f.Store(ir.R(d), ir.R(f.Add(ir.R(base), ir.ImmI(1))))
										f.Store(ir.R(w), ir.R(f.Add(ir.R(base), ir.ImmI(2))))
										f.Op3(ir.Add, countR, ir.R(countR), ir.ImmI(1))
									})
									f.St(ir.ImmF(0), ir.ImmI(pwA), ir.R(i))
									f.Mov(w, ir.ImmF(0))
									f.Mov(gone, ir.ImmI(1))
								},
								func() {
									f.Mov(x, ir.R(f.FSub(ir.R(f.FMul(ir.ImmF(2), ir.R(hiF))), ir.R(x))))
									f.Mov(d, ir.R(f.FSub(ir.ImmF(0), ir.R(d))))
								},
							)
						})
					})
					f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(gone), ir.ImmI(0))), func() {
						// Path-length tally for the traveled segment.
						cell := f.NewReg()
						f.Mov(cell, ir.R(f.FPToSI(ir.R(f.FMul(ir.R(f.FSub(ir.R(x), ir.R(loF))), ir.R(f.SIToFP(ir.ImmI(n))))))))
						f.If(ir.R(f.ICmp(ir.ICmpSLT, ir.R(cell), ir.ImmI(0))), func() { f.Mov(cell, ir.ImmI(0)) })
						f.If(ir.R(f.ICmp(ir.ICmpSGE, ir.R(cell), ir.ImmI(n))), func() { f.Mov(cell, ir.ImmI(n-1)) })
						told := f.Ld(ir.ImmI(tallyA), ir.R(cell))
						f.St(ir.R(f.FAdd(ir.R(told), ir.R(f.FMul(ir.R(w), ir.R(seg))))), ir.ImmI(tallyA), ir.R(cell))
						// Collision: absorb (deposit the weight) or scatter.
						f.If(ir.R(f.FCmp(ir.FCmpLT, ir.R(dist), ir.R(rem))), func() {
							uc := f.NewReg()
							f.Call("lcgu", []ir.Reg{uc})
							f.IfElse(ir.R(f.FCmp(ir.FCmpLT, ir.R(uc), ir.ImmF(mcbPAbsorb))),
								func() {
									t2 := f.Ld(ir.ImmI(tallyA), ir.R(cell))
									f.St(ir.R(f.FAdd(ir.R(t2), ir.R(w))), ir.ImmI(tallyA), ir.R(cell))
									f.St(ir.ImmF(0), ir.ImmI(pwA), ir.R(i))
									f.Mov(w, ir.ImmF(0))
								},
								func() {
									ud := f.NewReg()
									f.Call("lcgu", []ir.Reg{ud})
									f.If(ir.R(f.FCmp(ir.FCmpLT, ir.R(ud), ir.ImmF(0.5))), func() {
										f.Mov(d, ir.R(f.FSub(ir.ImmF(0), ir.R(d))))
									})
								},
							)
						})
					})
					nrem := f.Select(ir.R(gone), ir.ImmF(0), ir.R(f.FSub(ir.R(rem), ir.R(dist))))
					f.Mov(rem, ir.R(nrem))
				})
				f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(gone), ir.ImmI(0))), func() {
					f.St(ir.R(x), ir.ImmI(pxA), ir.R(i))
					f.St(ir.R(d), ir.ImmI(pdA), ir.R(i))
				})
			})
		})
		// Boundary exchange: fixed-size buffers, word 0 is the count.
		f.Store(ir.R(f.SIToFP(ir.R(countL))), ir.ImmI(sendL))
		f.Store(ir.R(f.SIToFP(ir.R(countR))), ir.ImmI(sendR))
		f.If(ir.R(hasL), func() {
			f.MPISend(ir.ImmI(sendL), ir.ImmI(bufWords), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(mcbTagLeftward))
		})
		f.If(ir.R(hasR), func() {
			f.MPISend(ir.ImmI(sendR), ir.ImmI(bufWords), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(mcbTagRightward))
		})
		f.If(ir.R(hasR), func() {
			f.MPIRecv(ir.ImmI(recvBufR), ir.ImmI(bufWords), ir.R(f.Add(ir.R(rank), ir.ImmI(1))), ir.ImmI(mcbTagLeftward))
		})
		f.If(ir.R(hasL), func() {
			f.MPIRecv(ir.ImmI(recvBufL), ir.ImmI(bufWords), ir.R(f.Sub(ir.R(rank), ir.ImmI(1))), ir.ImmI(mcbTagRightward))
		})
		// Install incoming particles into free slots (drop on overflow).
		install := func(bufBase int64, has ir.Reg) {
			f.If(ir.R(has), func() {
				cnt := f.FPToSI(ir.R(f.Load(ir.ImmI(bufBase))))
				// Harden against corrupted counts: clamp into the buffer.
				f.If(ir.R(f.ICmp(ir.ICmpSLT, ir.R(cnt), ir.ImmI(0))), func() { f.Mov(cnt, ir.ImmI(0)) })
				f.If(ir.R(f.ICmp(ir.ICmpSGT, ir.R(cnt), ir.ImmI(mcbMaxXfer))), func() { f.Mov(cnt, ir.ImmI(mcbMaxXfer)) })
				k := f.NewReg()
				slot := f.CI(0)
				f.For(k, ir.ImmI(0), ir.R(cnt), func() {
					base := f.Add(ir.ImmI(bufBase+1), ir.R(f.Mul(ir.R(k), ir.ImmI(3))))
					// Find the next free slot.
					placed := f.CI(0)
					f.While(func() ir.Operand {
						c1 := f.ICmp(ir.ICmpSLT, ir.R(slot), ir.ImmI(cap64))
						c2 := f.ICmp(ir.ICmpEQ, ir.R(placed), ir.ImmI(0))
						return ir.R(f.And(ir.R(c1), ir.R(c2)))
					}, func() {
						free := f.FCmp(ir.FCmpEQ, ir.R(f.Ld(ir.ImmI(pwA), ir.R(slot))), ir.ImmF(0))
						f.If(ir.R(free), func() {
							f.St(ir.R(f.Load(ir.R(base))), ir.ImmI(pxA), ir.R(slot))
							f.St(ir.R(f.Load(ir.R(f.Add(ir.R(base), ir.ImmI(1))))), ir.ImmI(pdA), ir.R(slot))
							f.St(ir.R(f.Load(ir.R(f.Add(ir.R(base), ir.ImmI(2))))), ir.ImmI(pwA), ir.R(slot))
							f.Mov(placed, ir.ImmI(1))
						})
						f.Op3(ir.Add, slot, ir.R(slot), ir.ImmI(1))
					})
				})
			})
		}
		install(recvBufR, hasR)
		install(recvBufL, hasL)
		// Global alive-weight tally (collective each step).
		wsum := f.CF(0)
		f.For(i, ir.ImmI(0), ir.ImmI(cap64), func() {
			f.Op3(ir.FAdd, wsum, ir.R(wsum), ir.R(f.Ld(ir.ImmI(pwA), ir.R(i))))
		})
		f.Store(ir.R(wsum), ir.ImmI(sendSlot))
		f.MPIAllreduceF(ir.ImmI(sendSlot), ir.ImmI(redSlot), ir.ImmI(1), ir.ReduceSum)
		f.Mov(weightReg, ir.R(f.Load(ir.ImmI(redSlot))))
	})

	// Outputs: the per-cell flux tallies (the quantity a Monte Carlo
	// transport code reports) and the local alive weight; rank 0 adds the
	// final global weight.
	f.For(i, ir.ImmI(0), ir.ImmI(n), func() {
		f.OutputF(ir.R(f.Ld(ir.ImmI(tallyA), ir.R(i))))
	})
	lw := f.CF(0)
	f.For(i, ir.ImmI(0), ir.ImmI(cap64), func() {
		f.Op3(ir.FAdd, lw, ir.R(lw), ir.R(f.Ld(ir.ImmI(pwA), ir.R(i))))
	})
	f.OutputF(ir.R(lw))
	f.If(ir.R(f.ICmp(ir.ICmpEQ, ir.R(rank), ir.ImmI(0))), func() {
		f.OutputF(ir.R(weightReg))
	})
	f.Iterations(ir.ImmI(int64(p.Steps)))
	f.Ret()
	return b.Build()
}

// Reference replays the Monte Carlo model in pure Go with the identical
// LCG streams and operation order.
func (m MCB) Reference(p Params) ([]float64, error) {
	if err := p.validate(); err != nil {
		return nil, err
	}
	n, R := p.Size, p.Ranks
	capN := mcbCapMul * n
	spawn := n / mcbSpawnDiv
	if spawn < 1 {
		spawn = 1
	}
	type particle struct{ x, d, w float64 }
	type rankState struct {
		ps    []particle
		tally []float64
		rng   uint64
	}
	st := make([]rankState, R)
	for r := 0; r < R; r++ {
		st[r].ps = make([]particle, capN)
		for i := range st[r].ps {
			st[r].ps[i].d = 1
		}
		st[r].tally = make([]float64, n)
		st[r].rng = uint64(int64(r+1)*(-0x61c8864680b583eb) + int64(p.Seed))
	}
	lcgu := func(r int) float64 {
		st[r].rng = st[r].rng*uint64(mcbLCGMul) + uint64(mcbLCGAdd)
		return float64(st[r].rng>>11) * 0x1p-53
	}
	mfpTab := mcbMFPTable()

	weightGlobal := 0.0
	for s := 0; s < p.Steps; s++ {
		type xfer struct{ x, d, w float64 }
		outL := make([][]xfer, R)
		outR := make([][]xfer, R)
		for r := 0; r < R; r++ {
			lo := float64(r)
			hi := lo + 1
			// Spawn.
			spawned := 0
			for i := 0; i < capN; i++ {
				if spawned < spawn && st[r].ps[i].w == 0 {
					u := lcgu(r)
					st[r].ps[i].x = lo + u
					ud := lcgu(r)
					if ud < 0.5 {
						st[r].ps[i].d = -1
					} else {
						st[r].ps[i].d = 1
					}
					st[r].ps[i].w = 1
					spawned++
				}
			}
			// Transport: exponential distance-to-collision sampling.
			for i := 0; i < capN; i++ {
				pt := &st[r].ps[i]
				if !(pt.w > 0) {
					continue
				}
				w := pt.w
				d := pt.d
				x := pt.x
				gone := false
				rem := mcbBudget
				for rem > 0 && !gone && w > 0 {
					cur := int(fptosiRef((x - lo) * float64(n)))
					if cur < 0 {
						cur = 0
					}
					if cur >= n {
						cur = n - 1
					}
					mfp := mfpTab[cur&3]
					u := lcgu(r)
					dist := (0 - math.Log(u)) * mfp
					seg := math.Min(dist, rem)
					x = x + d*seg
					if x < lo {
						if r > 0 {
							if len(outL[r]) < mcbMaxXfer {
								outL[r] = append(outL[r], xfer{x, d, w})
							}
							pt.w = 0
							w = 0
							gone = true
						} else {
							x = lo + (lo - x)
							d = 0 - d
						}
					}
					if !gone && x >= hi {
						if r < R-1 {
							if len(outR[r]) < mcbMaxXfer {
								outR[r] = append(outR[r], xfer{x, d, w})
							}
							pt.w = 0
							w = 0
							gone = true
						} else {
							x = 2*hi - x
							d = 0 - d
						}
					}
					if !gone {
						cell := int(fptosiRef((x - lo) * float64(n)))
						if cell < 0 {
							cell = 0
						}
						if cell >= n {
							cell = n - 1
						}
						st[r].tally[cell] = st[r].tally[cell] + w*seg
						if dist < rem {
							uc := lcgu(r)
							if uc < mcbPAbsorb {
								st[r].tally[cell] = st[r].tally[cell] + w
								pt.w = 0
								w = 0
							} else {
								ud := lcgu(r)
								if ud < 0.5 {
									d = 0 - d
								}
							}
						}
					}
					if gone {
						rem = 0
					} else {
						rem = rem - dist
					}
				}
				if !gone {
					pt.x = x
					pt.d = d
				}
			}
		}
		// Exchange and install: from the right neighbor first, then the
		// left, matching the IR order.
		for r := 0; r < R; r++ {
			slot := 0
			installOne := func(in xfer) {
				for slot < capN {
					if st[r].ps[slot].w == 0 {
						st[r].ps[slot] = particle{in.x, in.d, in.w}
						slot++
						return
					}
					slot++
				}
			}
			if r < R-1 {
				for _, in := range outL[r+1] {
					installOne(in)
				}
			}
			if r > 0 {
				for _, in := range outR[r-1] {
					installOne(in)
				}
			}
		}
		weightGlobal = 0
		for r := 0; r < R; r++ {
			local := 0.0
			for i := 0; i < capN; i++ {
				local += st[r].ps[i].w
			}
			weightGlobal += local
		}
	}

	var out []float64
	for r := 0; r < R; r++ {
		out = append(out, st[r].tally...)
		lw := 0.0
		for i := 0; i < capN; i++ {
			lw += st[r].ps[i].w
		}
		out = append(out, lw)
		if r == 0 {
			out = append(out, weightGlobal)
		}
	}
	return out, nil
}

// fptosiRef mirrors the VM's hardware-style float->int conversion.
func fptosiRef(f float64) int64 {
	if math.IsNaN(f) || f >= 9.223372036854776e18 || f < -9.223372036854776e18 {
		return math.MinInt64
	}
	return int64(f)
}
