package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStrings(t *testing.T) {
	for op := Nop; op <= FpmStore; op++ {
		if s := op.String(); s == "" || s == "op?" {
			t.Errorf("opcode %d has no name", op)
		}
	}
}

func TestIntrinStrings(t *testing.T) {
	for id := IntrinSqrt; id < IntrinID(NumIntrins); id++ {
		if s := id.String(); s == "" || s == "intrin?" {
			t.Errorf("intrinsic %d has no name", id)
		}
	}
}

func TestClassOf(t *testing.T) {
	cases := []struct {
		op   Op
		want Class
	}{
		{Add, ClassArith}, {FMul, ClassArith}, {SIToFP, ClassArith},
		{Load, ClassMem}, {Store, ClassMem},
		{ICmpEQ, ClassCmp}, {Select, ClassCmp},
		{Jmp, ClassControl}, {Call, ClassControl},
		{ConstI, ClassNone}, {Mov, ClassNone}, {FimInj, ClassNone},
	}
	for _, c := range cases {
		if got := ClassOf(c.op); got != c.want {
			t.Errorf("ClassOf(%v) = %v, want %v", c.op, got, c.want)
		}
	}
}

func TestOperandConstructors(t *testing.T) {
	if o := R(3); !o.IsReg() || o.Reg != 3 {
		t.Errorf("R(3) = %+v", o)
	}
	if o := ImmI(-5); o.IsReg() || int64(o.Imm) != -5 {
		t.Errorf("ImmI(-5) = %+v", o)
	}
	if o := ImmF(1.5); o.Imm != 0x3ff8000000000000 {
		t.Errorf("ImmF(1.5) = %#x", o.Imm)
	}
}

func TestBuilderSimpleProgram(t *testing.T) {
	b := NewBuilder()
	g := b.Global("data", 4)
	if g != 1 {
		t.Fatalf("first global base = %d, want 1", g)
	}
	b.GlobalInit("data", []uint64{10, 20, 30, 40})
	f := b.Func("main", 0, 0)
	sum := f.NewReg()
	i := f.NewReg()
	f.ConstI(sum, 0)
	f.For(i, ImmI(0), ImmI(4), func() {
		v := f.Ld(ImmI(g), R(i))
		f.Op3(Add, sum, R(sum), R(v))
	})
	f.OutputI(R(sum))
	f.Ret()

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if prog.GlobalWords != 4 {
		t.Errorf("GlobalWords = %d, want 4", prog.GlobalWords)
	}
	if prog.FuncNamed("main") == nil {
		t.Error("main not found")
	}
	if _, ok := prog.GlobalNamed("data"); !ok {
		t.Error("global data not found")
	}
	if _, ok := prog.GlobalNamed("nope"); ok {
		t.Error("unexpected global")
	}
}

func TestBuilderCallsResolvedByName(t *testing.T) {
	b := NewBuilder()
	main := b.Func("main", 0, 0)
	r := main.NewReg()
	// Forward reference: callee defined after the call site.
	main.Call("twice", []Reg{r}, ImmI(21))
	main.OutputI(R(r))
	main.Ret()

	twice := b.Func("twice", 1, 1)
	out := twice.Mul(R(twice.Param(0)), ImmI(2))
	twice.Ret(R(out))

	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	call := prog.FuncNamed("main").Code[0]
	if call.Op != Call || prog.Funcs[call.Target].Name != "twice" {
		t.Errorf("call not resolved: %+v", call)
	}
}

func TestBuilderErrors(t *testing.T) {
	t.Run("duplicate function", func(t *testing.T) {
		b := NewBuilder()
		b.Func("main", 0, 0).Ret()
		b.Func("main", 0, 0).Ret()
		if _, err := b.Build(); err == nil {
			t.Error("duplicate function not rejected")
		}
	})
	t.Run("missing entry", func(t *testing.T) {
		b := NewBuilder()
		b.Func("helper", 0, 0).Ret()
		if _, err := b.Build(); err == nil {
			t.Error("missing entry not rejected")
		}
	})
	t.Run("undefined callee", func(t *testing.T) {
		b := NewBuilder()
		f := b.Func("main", 0, 0)
		f.Call("ghost", nil)
		f.Ret()
		if _, err := b.Build(); err == nil {
			t.Error("undefined callee not rejected")
		}
	})
	t.Run("unbound label", func(t *testing.T) {
		b := NewBuilder()
		f := b.Func("main", 0, 0)
		l := f.NewLabel()
		f.Jmp(l)
		f.Ret()
		if _, err := b.Build(); err == nil {
			t.Error("unbound label not rejected")
		}
	})
	t.Run("bad global size", func(t *testing.T) {
		b := NewBuilder()
		b.Global("x", 0)
		b.Func("main", 0, 0).Ret()
		if _, err := b.Build(); err == nil {
			t.Error("zero-size global not rejected")
		}
	})
	t.Run("oversized init", func(t *testing.T) {
		b := NewBuilder()
		b.Global("x", 1)
		b.GlobalInit("x", []uint64{1, 2})
		b.Func("main", 0, 0).Ret()
		if _, err := b.Build(); err == nil {
			t.Error("oversized init not rejected")
		}
	})
	t.Run("init of undeclared global", func(t *testing.T) {
		b := NewBuilder()
		b.GlobalInit("ghost", []uint64{1})
		b.Func("main", 0, 0).Ret()
		if _, err := b.Build(); err == nil {
			t.Error("undeclared init not rejected")
		}
	})
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	mk := func(f Func) *Program {
		return &Program{
			Funcs:  []*Func{&f},
			ByName: map[string]int{f.Name: 0},
		}
	}
	t.Run("register out of range", func(t *testing.T) {
		p := mk(Func{Name: "main", NumRegs: 1, Code: []Instr{
			{Op: Mov, Dst: 5, A: R(0)},
			{Op: Ret},
		}})
		if err := p.Validate(); err == nil {
			t.Error("out-of-range dst accepted")
		}
	})
	t.Run("jump out of range", func(t *testing.T) {
		p := mk(Func{Name: "main", NumRegs: 1, Code: []Instr{
			{Op: Jmp, Target: 99},
			{Op: Ret},
		}})
		if err := p.Validate(); err == nil {
			t.Error("wild jump accepted")
		}
	})
	t.Run("no terminator", func(t *testing.T) {
		p := mk(Func{Name: "main", NumRegs: 1, Code: []Instr{
			{Op: Nop},
		}})
		if err := p.Validate(); err == nil {
			t.Error("missing terminator accepted")
		}
	})
	t.Run("ret arity", func(t *testing.T) {
		p := mk(Func{Name: "main", NumRegs: 1, NumRets: 1, Code: []Instr{
			{Op: Ret},
		}})
		if err := p.Validate(); err == nil {
			t.Error("ret arity mismatch accepted")
		}
	})
	t.Run("bad intrinsic", func(t *testing.T) {
		p := mk(Func{Name: "main", NumRegs: 1, Code: []Instr{
			{Op: Intrin, Target: 9999},
			{Op: Ret},
		}})
		if err := p.Validate(); err == nil {
			t.Error("unknown intrinsic accepted")
		}
	})
	t.Run("call arity", func(t *testing.T) {
		callee := &Func{Name: "f", NumParams: 2, NumRegs: 2, Code: []Instr{{Op: Ret}}}
		main := &Func{Name: "main", NumRegs: 1, Code: []Instr{
			{Op: Call, Target: 1, Args: []Operand{ImmI(1)}},
			{Op: Ret},
		}}
		p := &Program{Funcs: []*Func{main, callee}, ByName: map[string]int{"main": 0, "f": 1}}
		if err := p.Validate(); err == nil {
			t.Error("call arity mismatch accepted")
		}
	})
}

func TestRegSources(t *testing.T) {
	in := Instr{Op: Add, Dst: 2, A: R(0), B: ImmI(5)}
	got := in.RegSources(nil)
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("RegSources = %v, want [0]", got)
	}
	call := Instr{Op: Call, Args: []Operand{R(1), ImmI(2), R(3)}}
	got = call.RegSources(nil)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("call RegSources = %v, want [1 3]", got)
	}
}

func TestDisassembleStable(t *testing.T) {
	b := NewBuilder()
	b.Global("g", 2)
	f := b.Func("main", 0, 0)
	x := f.CF(2.5)
	y := f.FMul(R(x), ImmF(4))
	f.Store(R(y), ImmI(1))
	f.Ret()
	prog := b.MustBuild()
	text := DisassembleProgram(prog)
	for _, want := range []string{"global g @1 size=2", "constf #2.5", "fmul", "store", "ret"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestCollectStats(t *testing.T) {
	b := NewBuilder()
	b.Global("g", 8)
	f := b.Func("main", 0, 0)
	s := f.Add(ImmI(1), ImmI(2))
	f.Store(R(s), ImmI(1))
	f.Ret()
	prog := b.MustBuild()
	st := prog.CollectStats()
	if st.Funcs != 1 || st.GlobalWords != 8 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByClass[ClassArith] != 2 { // Add for s, Add inside nothing else... Store addr is imm
		// One Add from f.Add; no other arith.
		t.Logf("class map: %v", st.ByClass)
	}
	if st.Instructions != len(prog.Funcs[0].Code) {
		t.Errorf("instruction count mismatch")
	}
}

func TestControlFlowHelpersShape(t *testing.T) {
	b := NewBuilder()
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	n := f.NewReg()
	f.ConstI(n, 0)
	f.For(i, ImmI(0), ImmI(10), func() {
		f.If(R(f.ICmp(ICmpSLT, R(i), ImmI(5))), func() {
			f.Op3(Add, n, R(n), ImmI(1))
		})
		f.IfElse(R(f.ICmp(ICmpEQ, R(i), ImmI(7))),
			func() { f.Op3(Add, n, R(n), ImmI(100)) },
			func() { f.Op3(Add, n, R(n), ImmI(0)) },
		)
	})
	f.Ret()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// All jump targets must be in range (Validate checks), and there must
	// be at least one backward jump (the loop).
	code := prog.Funcs[0].Code
	backward := false
	for pc, in := range code {
		if in.Op == Jmp && int(in.Target) < pc {
			backward = true
		}
	}
	if !backward {
		t.Error("For loop produced no backward jump")
	}
}

func TestFormatOperandProperty(t *testing.T) {
	// FormatOperand never returns an empty string for any operand.
	f := func(kind uint8, reg int32, imm uint64) bool {
		o := Operand{Kind: OperandKind(kind % 3), Reg: Reg(reg), Imm: imm}
		return FormatOperand(o) != ""
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
