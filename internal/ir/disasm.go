package ir

import (
	"fmt"
	"math"
	"strings"
)

// FormatOperand renders an operand. Float immediates cannot be
// distinguished from integer immediates without opcode context, so raw bits
// are shown for large magnitudes.
func FormatOperand(o Operand) string {
	switch o.Kind {
	case KindNone:
		return "_"
	case KindReg:
		return fmt.Sprintf("r%d", o.Reg)
	default:
		i := int64(o.Imm)
		if i > -1_000_000 && i < 1_000_000 {
			return fmt.Sprintf("#%d", i)
		}
		// Float-looking words render with an 'f' suffix so the assembler
		// can round-trip them unambiguously.
		f := math.Float64frombits(o.Imm)
		if !math.IsNaN(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e30 && f == f {
			if math.Float64bits(f) == o.Imm {
				return fmt.Sprintf("#%gf", f)
			}
		}
		return fmt.Sprintf("#0x%x", o.Imm)
	}
}

// FormatInstr renders one instruction; prog may be nil (call targets are
// then shown as indices).
func FormatInstr(prog *Program, in *Instr) string {
	var sb strings.Builder
	if in.Flags&FlagSecondary != 0 {
		sb.WriteString("  ~")
	} else {
		sb.WriteString("   ")
	}
	switch in.Op {
	case Nop:
		sb.WriteString("nop")
	case ConstI:
		fmt.Fprintf(&sb, "r%d = consti %s", in.Dst, FormatOperand(in.A))
	case ConstF:
		fmt.Fprintf(&sb, "r%d = constf #%g", in.Dst, math.Float64frombits(in.A.Imm))
	case Jmp:
		fmt.Fprintf(&sb, "jmp @%d", in.Target)
	case Bnz:
		fmt.Fprintf(&sb, "bnz %s, @%d", FormatOperand(in.A), in.Target)
	case Bz:
		fmt.Fprintf(&sb, "bz %s, @%d", FormatOperand(in.A), in.Target)
	case Store:
		fmt.Fprintf(&sb, "store %s -> [%s]", FormatOperand(in.A), FormatOperand(in.B))
	case FpmStore:
		fmt.Fprintf(&sb, "fpm_store v=%s v'=%s -> [a=%s a'=%s]",
			FormatOperand(in.A), FormatOperand(in.B), FormatOperand(in.C), FormatOperand(in.D))
	case Load:
		fmt.Fprintf(&sb, "r%d = load [%s]", in.Dst, FormatOperand(in.A))
	case FpmFetch:
		fmt.Fprintf(&sb, "r%d = fpm_fetch [%s]", in.Dst, FormatOperand(in.A))
	case FimInj:
		fmt.Fprintf(&sb, "r%d = fim_inj(%s)", in.Dst, FormatOperand(in.A))
	case Call:
		name := fmt.Sprintf("fn#%d", in.Target)
		if prog != nil && int(in.Target) < len(prog.Funcs) {
			name = prog.Funcs[in.Target].Name
		}
		fmt.Fprintf(&sb, "%s = call %s(%s)", formatRets(in.Rets), name, formatArgs(in.Args))
	case Intrin:
		fmt.Fprintf(&sb, "%s = %s(%s)", formatRets(in.Rets), IntrinID(in.Target), formatArgs(in.Args))
	case Ret:
		fmt.Fprintf(&sb, "ret %s", formatArgs(in.Args))
	case Select:
		fmt.Fprintf(&sb, "r%d = select %s ? %s : %s", in.Dst,
			FormatOperand(in.A), FormatOperand(in.B), FormatOperand(in.C))
	default:
		fmt.Fprintf(&sb, "r%d = %s %s", in.Dst, in.Op, FormatOperand(in.A))
		if in.B.Kind != KindNone {
			fmt.Fprintf(&sb, ", %s", FormatOperand(in.B))
		}
	}
	if in.Flags&FlagInjectable != 0 {
		sb.WriteString("  ; inj")
	}
	return sb.String()
}

func formatArgs(args []Operand) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = FormatOperand(a)
	}
	return strings.Join(parts, ", ")
}

func formatRets(rets []Reg) string {
	if len(rets) == 0 {
		return "_"
	}
	parts := make([]string, len(rets))
	for i, r := range rets {
		parts[i] = fmt.Sprintf("r%d", r)
	}
	return strings.Join(parts, ", ")
}

// Disassemble renders a whole function.
func Disassemble(prog *Program, f *Func) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(params=%d rets=%d regs=%d frame=%d):\n",
		f.Name, f.NumParams, f.NumRets, f.NumRegs, f.Frame)
	for pc := range f.Code {
		fmt.Fprintf(&sb, "%4d:%s\n", pc, FormatInstr(prog, &f.Code[pc]))
	}
	return sb.String()
}

// DisassembleProgram renders the entire program.
func DisassembleProgram(prog *Program) string {
	var sb strings.Builder
	for _, g := range prog.Globals {
		fmt.Fprintf(&sb, "global %s @%d size=%d\n", g.Name, g.Base, g.Size)
	}
	for _, f := range prog.Funcs {
		sb.WriteString(Disassemble(prog, f))
	}
	return sb.String()
}
