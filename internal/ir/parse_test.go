package ir

import (
	"testing"
)

const sampleSrc = `
; A small program: sum the squares of a global array.
global data size=4 init=1,2,3,4
global out size=1

func main(params=0 rets=0):
  r0 = consti #0        ; accumulator
  r1 = consti #0        ; index
loop:
  r2 = icmp.slt r1, #4
  bz r2, @done
  r3 = add r1, #1
  r4 = load [r5]        ; address computed below? no: placeholder
  jmp @body
body:
  r5 = add r1, #1       ; data base is 1
  r4 = load [r5]
  r6 = mul r4, r4
  r0 = add r0, r6
  r1 = add r1, #1
  jmp @loop
done:
  store r0 -> [#5]
  _ = output.i(r0)
  ret
`

func TestParseAndRunSample(t *testing.T) {
	prog, err := ParseProgram(sampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.GlobalWords != 5 {
		t.Errorf("global words = %d", prog.GlobalWords)
	}
	g, ok := prog.GlobalNamed("data")
	if !ok || g.Size != 4 || g.Init[2] != 3 {
		t.Errorf("data global = %+v", g)
	}
	if err := prog.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"instruction outside func", "r0 = consti #1"},
		{"bad global", "global x\nfunc main(params=0 rets=0):\n ret"},
		{"bad mnemonic", "func main(params=0 rets=0):\n r0 = zorp r1\n ret"},
		{"bad operand", "func main(params=0 rets=0):\n r0 = add q1, #2\n ret"},
		{"bad store", "func main(params=0 rets=0):\n store r0\n ret"},
		{"unbound label", "func main(params=0 rets=0):\n jmp @nowhere\n ret"},
		{"bad select", "func main(params=0 rets=0):\n r0 = select r1 r2 r3\n ret"},
		{"bad func header", "func main params=0:\n ret"},
		{"consti float", "func main(params=0 rets=0):\n r0 = consti rX\n ret"},
	}
	for _, c := range cases {
		if _, err := ParseProgram(c.src); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestParseCallAndIntrinsics(t *testing.T) {
	src := `
global g size=2
func main(params=0 rets=0):
  r0, r1 = twice(#21)
  _ = output.i(r0)
  _ = output.i(r1)
  r2 = sqrt(#9.0)
  _ = output.f(r2)
  ret

func twice(params=1 rets=2):
  r1 = mul r0, #2
  ret r1, r0
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	main := prog.FuncNamed("main")
	if main == nil {
		t.Fatal("main missing")
	}
	foundCall, foundIntrin := false, false
	for _, in := range main.Code {
		if in.Op == Call && len(in.Rets) == 2 {
			foundCall = true
		}
		if in.Op == Intrin && IntrinID(in.Target) == IntrinSqrt {
			foundIntrin = true
		}
	}
	if !foundCall || !foundIntrin {
		t.Errorf("call=%v intrin=%v", foundCall, foundIntrin)
	}
}

func TestParseSelectAndFrame(t *testing.T) {
	src := `
func main(params=0 rets=0 frame=4):
  r0 = frameaddr #0
  r1 = select r0 ? #10 : #20
  store r1 -> [r0]
  ret
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	f := prog.FuncNamed("main")
	if f.Frame != 4 {
		t.Errorf("frame = %d", f.Frame)
	}
	if f.Code[1].Op != Select {
		t.Errorf("op = %v", f.Code[1].Op)
	}
}

// TestDisassembleParseRoundTrip checks that the disassembler output of a
// builder-constructed program re-assembles into a structurally identical
// program (same disassembly).
func TestDisassembleParseRoundTrip(t *testing.T) {
	b := NewBuilder()
	g := b.Global("data", 4)
	b.GlobalInit("data", []uint64{5, 6, 7, 8})
	f := b.Func("main", 0, 0)
	i := f.NewReg()
	acc := f.CI(0)
	f.For(i, ImmI(0), ImmI(4), func() {
		v := f.Ld(ImmI(g), R(i))
		f.Op3(Add, acc, R(acc), R(v))
	})
	x := f.FMul(R(f.SIToFP(R(acc))), ImmF(0.5))
	sel := f.Select(R(f.FCmp(FCmpGT, R(x), ImmF(10))), ImmI(1), ImmI(0))
	f.OutputI(R(sel))
	f.OutputF(R(x))
	f.Ret()
	prog := b.MustBuild()

	text := DisassembleProgram(prog)
	prog2, err := ParseProgram(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	text2 := DisassembleProgram(prog2)
	// Register numbering may differ (the parser allocates registers in
	// first-use order), so compare opcode streams rather than raw text.
	ops := func(p *Program) []Op {
		var out []Op
		for _, fn := range p.Funcs {
			for _, in := range fn.Code {
				out = append(out, in.Op)
			}
		}
		return out
	}
	a, c := ops(prog), ops(prog2)
	if len(a) != len(c) {
		t.Fatalf("opcode stream lengths differ: %d vs %d\n--- first:\n%s\n--- second:\n%s",
			len(a), len(c), text, text2)
	}
	for i := range a {
		if a[i] != c[i] {
			t.Errorf("op %d: %v vs %v", i, a[i], c[i])
		}
	}
}

func TestParseWordForms(t *testing.T) {
	cases := []struct {
		in   string
		want uint64
	}{
		{"42", 42},
		{"-1", ^uint64(0)},
		{"0x10", 16},
		{"2.5f", 0x4004000000000000},
		{"1e3", 0x408f400000000000},
	}
	for _, c := range cases {
		got, err := parseWord(c.in)
		if err != nil {
			t.Errorf("parseWord(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("parseWord(%q) = %#x, want %#x", c.in, got, c.want)
		}
	}
	if _, err := parseWord("zed"); err == nil {
		t.Error("garbage accepted")
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	src := `
; comment line
; another comment

global g size=1   // trailing comment

func main(params=0 rets=0):
  r0 = consti #7  ; trailing
  store r0 -> [#1]
  ret
`
	prog, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Funcs[0].Code) != 3 {
		t.Errorf("code len = %d", len(prog.Funcs[0].Code))
	}
}
