package ir

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file implements the textual IR assembler: the inverse of the
// disassembler, so programs can be written, stored and diffed as text.
// Round-tripping Parse(DisassembleProgram(p)) reproduces p's structure.
//
// Grammar (one construct per line, ';' or "//" starts a comment):
//
//	global <name> size=<n> [init=<v0,v1,...>]
//	func <name>(params=<n> rets=<n> [frame=<n>]):
//	  [label:] <instruction>
//
// Instructions use the disassembler's mnemonics:
//
//	rD = consti #5            rD = constf #2.5
//	rD = mov rS               rD = add rA, #3
//	rD = load [rA]            store rA -> [#7]
//	rD = select rC ? rA : rB
//	jmp @label                bnz rC, @label        bz rC, @label
//	rD, rE = call name(rA, #2)
//	_ = output.f(rA)          rD = sqrt(rA)
//	ret [rA, ...]
//
// Branch targets may be textual labels (bound with "label:") or absolute
// instruction indices (@12).

// ParseProgram assembles a textual program.
func ParseProgram(src string) (*Program, error) {
	p := &parser{b: NewBuilder()}
	if err := p.run(src); err != nil {
		return nil, err
	}
	return p.b.Build()
}

type parser struct {
	b    *Builder
	f    *FuncBuilder
	fn   string
	line int
	// labels maps textual label -> builder label for the current function.
	labels map[string]Label
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("ir: parse line %d: %s", p.line, fmt.Sprintf(format, args...))
}

func (p *parser) run(src string) error {
	for _, raw := range strings.Split(src, "\n") {
		p.line++
		line := raw
		// ';' and "//" start comments; '#' is the immediate sigil.
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var err error
		switch {
		case strings.HasPrefix(line, "global "):
			err = p.parseGlobal(line)
		case strings.HasPrefix(line, "func "):
			err = p.parseFunc(line)
		default:
			err = p.parseInstr(line)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *parser) parseGlobal(line string) error {
	// global name size=N [init=a,b,c]
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return p.errf("malformed global: %q", line)
	}
	name := fields[1]
	var size int64
	var init []uint64
	for _, f := range fields[2:] {
		switch {
		case strings.HasPrefix(f, "size="):
			v, err := strconv.ParseInt(f[5:], 10, 64)
			if err != nil {
				return p.errf("bad size: %v", err)
			}
			size = v
		case strings.HasPrefix(f, "init="):
			for _, s := range strings.Split(f[5:], ",") {
				w, err := parseWord(s)
				if err != nil {
					return p.errf("bad init value %q: %v", s, err)
				}
				init = append(init, w)
			}
		case strings.HasPrefix(f, "@"): // disassembler emits the address; ignore
		default:
			return p.errf("unknown global attribute %q", f)
		}
	}
	if size == 0 {
		size = int64(len(init))
	}
	p.b.Global(name, size)
	if len(init) > 0 {
		p.b.GlobalInit(name, init)
	}
	return nil
}

// parseWord accepts integers, 0x hex words, and floats (f-suffixed or
// containing '.').
func parseWord(s string) (uint64, error) {
	s = strings.TrimSpace(s)
	if strings.HasSuffix(s, "f") {
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "f"), 64)
		if err != nil {
			return 0, err
		}
		return math.Float64bits(v), nil
	}
	if strings.HasPrefix(s, "0x") {
		return strconv.ParseUint(s[2:], 16, 64)
	}
	if strings.ContainsAny(s, ".eE") && !strings.HasPrefix(s, "0x") {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, err
		}
		return math.Float64bits(v), nil
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		// Large unsigned values.
		u, uerr := strconv.ParseUint(s, 10, 64)
		if uerr != nil {
			return 0, err
		}
		return u, nil
	}
	return uint64(v), nil
}

func (p *parser) parseFunc(line string) error {
	// func name(params=N rets=N [regs=N] [frame=N]):
	line = strings.TrimSuffix(strings.TrimSpace(line), ":")
	open := strings.IndexByte(line, '(')
	close_ := strings.LastIndexByte(line, ')')
	if open < 0 || close_ < open {
		return p.errf("malformed func header: %q", line)
	}
	name := strings.TrimSpace(strings.TrimPrefix(line[:open], "func"))
	params, rets, frame := 0, 0, 0
	for _, f := range strings.Fields(line[open+1 : close_]) {
		kv := strings.SplitN(f, "=", 2)
		if len(kv) != 2 {
			return p.errf("malformed func attribute %q", f)
		}
		v, err := strconv.Atoi(kv[1])
		if err != nil {
			return p.errf("bad %s: %v", kv[0], err)
		}
		if v < 0 || v > maxParseRegs {
			return p.errf("%s=%d out of range [0,%d]", kv[0], v, maxParseRegs)
		}
		switch kv[0] {
		case "params":
			params = v
		case "rets":
			rets = v
		case "frame":
			frame = v
		case "regs": // informational in disassembly; registers are implied
		default:
			return p.errf("unknown func attribute %q", kv[0])
		}
	}
	p.f = p.b.Func(name, params, rets)
	p.fn = name
	p.labels = make(map[string]Label)
	if frame > 0 {
		p.f.Local(frame)
	}
	return nil
}

// maxParseRegs bounds the register index accepted from text, so a hostile
// source like "r999999999" cannot force an enormous register file.
const maxParseRegs = 1 << 14

// reg parses rN and ensures the register file covers it.
func (p *parser) reg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	if n >= maxParseRegs {
		return 0, fmt.Errorf("register %q exceeds the %d-register limit", s, maxParseRegs)
	}
	for p.f.fn.NumRegs <= n {
		p.f.NewReg()
	}
	return Reg(n), nil
}

// operand parses rN, #imm, or #float.
func (p *parser) operand(s string) (Operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "" || s == "_":
		return Operand{}, nil
	case strings.HasPrefix(s, "r"):
		r, err := p.reg(s)
		if err != nil {
			return Operand{}, err
		}
		return R(r), nil
	case strings.HasPrefix(s, "#"):
		w, err := parseWord(s[1:])
		if err != nil {
			return Operand{}, err
		}
		return ImmBits(w), nil
	default:
		return Operand{}, fmt.Errorf("bad operand %q", s)
	}
}

// target parses @label or @N into a builder label.
func (p *parser) target(s string) (Label, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "@") {
		return 0, fmt.Errorf("expected @target, got %q", s)
	}
	name := s[1:]
	if l, ok := p.labels[name]; ok {
		return l, nil
	}
	l := p.f.NewLabel()
	p.labels[name] = l
	// Absolute numeric targets cannot be pre-bound reliably when mixed
	// with textual labels; they bind when a "N:" label line appears.
	return l, nil
}

var mnemonicOps = map[string]Op{
	"mov": Mov, "add": Add, "sub": Sub, "mul": Mul, "sdiv": SDiv, "srem": SRem,
	"shl": Shl, "lshr": LShr, "ashr": AShr, "and": And, "or": Or, "xor": Xor,
	"fadd": FAdd, "fsub": FSub, "fmul": FMul, "fdiv": FDiv,
	"sitofp": SIToFP, "fptosi": FPToSI,
	"icmp.eq": ICmpEQ, "icmp.ne": ICmpNE, "icmp.slt": ICmpSLT,
	"icmp.sle": ICmpSLE, "icmp.sgt": ICmpSGT, "icmp.sge": ICmpSGE,
	"fcmp.eq": FCmpEQ, "fcmp.ne": FCmpNE, "fcmp.lt": FCmpLT,
	"fcmp.le": FCmpLE, "fcmp.gt": FCmpGT, "fcmp.ge": FCmpGE,
	"frameaddr": FrameAddr,
}

var intrinByName = func() map[string]IntrinID {
	m := make(map[string]IntrinID)
	for id := IntrinID(1); id < IntrinID(NumIntrins); id++ {
		m[id.String()] = id
	}
	return m
}()

func (p *parser) parseInstr(line string) error {
	if p.f == nil {
		return p.errf("instruction outside a function: %q", line)
	}
	// Leading "N:" from disassembly or "name:" label lines.
	if i := strings.Index(line, ":"); i >= 0 && !strings.Contains(line[:i], " ") &&
		!strings.Contains(line[:i], "=") {
		label := line[:i]
		rest := strings.TrimSpace(line[i+1:])
		if l, ok := p.labels[label]; ok {
			p.f.Bind(l)
		} else if isLabelish(label) {
			l := p.f.NewLabel()
			p.labels[label] = l
			p.f.Bind(l)
		}
		if rest == "" {
			return nil
		}
		line = rest
	}
	line = strings.TrimSpace(line)
	// The disassembler prefixes '~' (secondary chain) and suffixes "; inj";
	// accept and ignore both when re-assembling.
	line = strings.TrimPrefix(line, "~")
	line = strings.TrimSpace(line)

	switch {
	case line == "nop":
		p.f.emit(Instr{Op: Nop})
		return nil
	case strings.HasPrefix(line, "jmp "):
		l, err := p.target(line[4:])
		if err != nil {
			return p.errf("%v", err)
		}
		p.f.Jmp(l)
		return nil
	case strings.HasPrefix(line, "bnz "), strings.HasPrefix(line, "bz "):
		op := line[:strings.IndexByte(line, ' ')]
		parts := strings.SplitN(line[len(op)+1:], ",", 2)
		if len(parts) != 2 {
			return p.errf("malformed %s: %q", op, line)
		}
		cond, err := p.operand(parts[0])
		if err != nil {
			return p.errf("%v", err)
		}
		l, err := p.target(parts[1])
		if err != nil {
			return p.errf("%v", err)
		}
		if op == "bnz" {
			p.f.Bnz(cond, l)
		} else {
			p.f.Bz(cond, l)
		}
		return nil
	case strings.HasPrefix(line, "store "):
		// store VAL -> [ADDR]
		body := strings.TrimPrefix(line, "store ")
		parts := strings.SplitN(body, "->", 2)
		if len(parts) != 2 {
			return p.errf("malformed store: %q", line)
		}
		val, err := p.operand(parts[0])
		if err != nil {
			return p.errf("%v", err)
		}
		addr, err := p.operand(stripBrackets(parts[1]))
		if err != nil {
			return p.errf("%v", err)
		}
		p.f.Store(val, addr)
		return nil
	case strings.HasPrefix(line, "ret"):
		rest := strings.TrimSpace(strings.TrimPrefix(line, "ret"))
		var vals []Operand
		if rest != "" {
			for _, s := range strings.Split(rest, ",") {
				o, err := p.operand(s)
				if err != nil {
					return p.errf("%v", err)
				}
				vals = append(vals, o)
			}
		}
		p.f.Ret(vals...)
		return nil
	}

	// Assignment forms: DSTS = RHS
	eq := strings.Index(line, "=")
	if eq < 0 {
		return p.errf("unrecognized instruction: %q", line)
	}
	lhs := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	var dsts []Reg
	if lhs != "_" {
		for _, s := range strings.Split(lhs, ",") {
			r, err := p.reg(s)
			if err != nil {
				return p.errf("%v", err)
			}
			dsts = append(dsts, r)
		}
	}
	return p.parseRHS(dsts, rhs)
}

func isLabelish(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		if !(c == '_' || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')) {
			return false
		}
	}
	return true
}

func stripBrackets(s string) string {
	s = strings.TrimSpace(s)
	s = strings.TrimPrefix(s, "[")
	s = strings.TrimSuffix(s, "]")
	return strings.TrimSpace(s)
}

func (p *parser) parseRHS(dsts []Reg, rhs string) error {
	dst := NoReg
	if len(dsts) == 1 {
		dst = dsts[0]
	}
	// Call / intrinsic form: name(args).
	if open := strings.IndexByte(rhs, '('); open > 0 && strings.HasSuffix(rhs, ")") &&
		!strings.ContainsAny(rhs[:open], " ?") {
		name := rhs[:open]
		var args []Operand
		inner := strings.TrimSpace(rhs[open+1 : len(rhs)-1])
		if inner != "" {
			for _, s := range strings.Split(inner, ",") {
				o, err := p.operand(s)
				if err != nil {
					return p.errf("%v", err)
				}
				args = append(args, o)
			}
		}
		if name == "fim_inj" {
			if dst == NoReg || len(args) != 1 {
				return p.errf("fim_inj needs one dst and one arg")
			}
			p.f.emit(Instr{Op: FimInj, Dst: dst, A: args[0]})
			return nil
		}
		if id, ok := intrinByName[name]; ok {
			p.f.Intrin(id, dsts, args...)
			return nil
		}
		p.f.Call(name, dsts, args...)
		return nil
	}
	fields := strings.Fields(rhs)
	if len(fields) == 0 {
		return p.errf("empty rhs")
	}
	mnem := fields[0]
	rest := strings.TrimSpace(rhs[len(mnem):])
	switch mnem {
	case "consti":
		o, err := p.operand(rest)
		if err != nil || o.Kind != KindImm {
			return p.errf("consti needs an immediate: %q", rhs)
		}
		p.f.emit(Instr{Op: ConstI, Dst: dst, A: o})
		return nil
	case "constf":
		if !strings.HasPrefix(rest, "#") {
			return p.errf("constf needs #value")
		}
		v, err := strconv.ParseFloat(rest[1:], 64)
		if err != nil {
			return p.errf("bad float %q", rest)
		}
		p.f.ConstF(dst, v)
		return nil
	case "load":
		o, err := p.operand(stripBrackets(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		p.f.emit(Instr{Op: Load, Dst: dst, A: o})
		return nil
	case "fpm_fetch":
		o, err := p.operand(stripBrackets(rest))
		if err != nil {
			return p.errf("%v", err)
		}
		p.f.emit(Instr{Op: FpmFetch, Dst: dst, A: o})
		return nil
	case "select":
		// select COND ? A : B
		q := strings.Index(rest, "?")
		c := strings.Index(rest, ":")
		if q < 0 || c < q {
			return p.errf("malformed select: %q", rhs)
		}
		cond, err1 := p.operand(rest[:q])
		a, err2 := p.operand(rest[q+1 : c])
		bb, err3 := p.operand(rest[c+1:])
		if err1 != nil || err2 != nil || err3 != nil {
			return p.errf("bad select operands: %q", rhs)
		}
		p.f.emit(Instr{Op: Select, Dst: dst, A: cond, B: a, C: bb})
		return nil
	}
	if op, ok := mnemonicOps[mnem]; ok {
		parts := strings.Split(rest, ",")
		a, err := p.operand(parts[0])
		if err != nil {
			return p.errf("%v", err)
		}
		in := Instr{Op: op, Dst: dst, A: a}
		if len(parts) > 1 {
			b, err := p.operand(parts[1])
			if err != nil {
				return p.errf("%v", err)
			}
			in.B = b
		}
		p.f.emit(in)
		return nil
	}
	return p.errf("unknown mnemonic %q", mnem)
}
