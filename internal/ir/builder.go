package ir

import (
	"fmt"
	"math"
)

// Builder assembles a Program: globals, functions, and cross-function call
// resolution by name.
type Builder struct {
	prog      *Program
	nextWord  int64
	funcs     []*FuncBuilder
	entryName string
	err       error
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		prog: &Program{
			ByName: make(map[string]int),
		},
		nextWord:  1, // address 0 is the null word
		entryName: "main",
	}
}

// SetEntry names the entry function (default "main").
func (b *Builder) SetEntry(name string) { b.entryName = name }

// Global reserves size words in the global segment under name and returns
// the base address.
func (b *Builder) Global(name string, size int64) int64 {
	if size <= 0 {
		b.fail(fmt.Errorf("ir: global %q has non-positive size %d", name, size))
		return 0
	}
	base := b.nextWord
	b.prog.Globals = append(b.prog.Globals, Global{Name: name, Base: base, Size: size})
	b.nextWord += size
	return base
}

// GlobalInit sets the initial contents of a previously declared global.
// len(init) must not exceed the global's size; remaining words stay zero.
func (b *Builder) GlobalInit(name string, init []uint64) {
	for i := range b.prog.Globals {
		g := &b.prog.Globals[i]
		if g.Name == name {
			if int64(len(init)) > g.Size {
				b.fail(fmt.Errorf("ir: init for global %q has %d words, size is %d",
					name, len(init), g.Size))
				return
			}
			g.Init = append([]uint64(nil), init...)
			return
		}
	}
	b.fail(fmt.Errorf("ir: GlobalInit of undeclared global %q", name))
}

// GlobalInitF sets the initial contents of a global from float64 values.
func (b *Builder) GlobalInitF(name string, init []float64) {
	words := make([]uint64, len(init))
	for i, v := range init {
		words[i] = math.Float64bits(v)
	}
	b.GlobalInit(name, words)
}

func (b *Builder) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Func starts a new function with the given number of parameters and
// returned values. Parameters arrive in registers 0..params-1.
func (b *Builder) Func(name string, params, rets int) *FuncBuilder {
	f := &FuncBuilder{
		b: b,
		fn: &Func{
			Name:      name,
			NumParams: params,
			NumRets:   rets,
			NumRegs:   params,
		},
	}
	if _, dup := b.prog.ByName[name]; dup {
		b.fail(fmt.Errorf("ir: duplicate function %q", name))
	}
	b.prog.ByName[name] = len(b.funcs)
	b.funcs = append(b.funcs, f)
	return f
}

// Build finalizes the program: resolves labels and call targets, validates,
// and returns the program.
func (b *Builder) Build() (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	b.prog.GlobalWords = b.nextWord - 1
	for _, fb := range b.funcs {
		if err := fb.finish(); err != nil {
			return nil, fmt.Errorf("ir: func %q: %w", fb.fn.Name, err)
		}
		b.prog.Funcs = append(b.prog.Funcs, fb.fn)
	}
	entry, ok := b.prog.ByName[b.entryName]
	if !ok {
		return nil, fmt.Errorf("ir: entry function %q not defined", b.entryName)
	}
	b.prog.Entry = entry
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; for tests and fixed app builders
// whose structure is statically known to be valid.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// Label names a forward- or backward-referenced code position.
type Label int

// FuncBuilder emits instructions for one function.
type FuncBuilder struct {
	b         *Builder
	fn        *Func
	labelPos  []int // label -> pc, -1 if unbound
	patchPCs  []int // pcs whose Target is a Label to resolve
	callPCs   []int // pcs whose Target is a callee name index
	callNames []string
}

// NewReg allocates a fresh virtual register.
func (f *FuncBuilder) NewReg() Reg {
	r := Reg(f.fn.NumRegs)
	f.fn.NumRegs++
	return r
}

// NewRegs allocates n fresh registers.
func (f *FuncBuilder) NewRegs(n int) []Reg {
	rs := make([]Reg, n)
	for i := range rs {
		rs[i] = f.NewReg()
	}
	return rs
}

// Param returns the register holding the i-th parameter.
func (f *FuncBuilder) Param(i int) Reg {
	if i < 0 || i >= f.fn.NumParams {
		f.b.fail(fmt.Errorf("ir: func %q: Param(%d) out of range", f.fn.Name, i))
		return 0
	}
	return Reg(i)
}

// Local reserves size words in the function's stack frame and returns the
// frame offset. Use FrameAddr to obtain the address at runtime.
func (f *FuncBuilder) Local(size int) int {
	off := f.fn.Frame
	f.fn.Frame += size
	return off
}

// NewLabel creates an unbound label.
func (f *FuncBuilder) NewLabel() Label {
	f.labelPos = append(f.labelPos, -1)
	return Label(len(f.labelPos) - 1)
}

// Bind attaches the label to the current code position.
func (f *FuncBuilder) Bind(l Label) {
	if f.labelPos[l] != -1 {
		f.b.fail(fmt.Errorf("ir: func %q: label %d bound twice", f.fn.Name, l))
		return
	}
	f.labelPos[l] = len(f.fn.Code)
}

func (f *FuncBuilder) emit(in Instr) int {
	f.fn.Code = append(f.fn.Code, in)
	return len(f.fn.Code) - 1
}

// --- raw emission -----------------------------------------------------------

// ConstI sets dst to the integer immediate.
func (f *FuncBuilder) ConstI(dst Reg, v int64) { f.emit(Instr{Op: ConstI, Dst: dst, A: ImmI(v)}) }

// ConstF sets dst to the float immediate.
func (f *FuncBuilder) ConstF(dst Reg, v float64) { f.emit(Instr{Op: ConstF, Dst: dst, A: ImmF(v)}) }

// Mov copies a into dst.
func (f *FuncBuilder) Mov(dst Reg, a Operand) { f.emit(Instr{Op: Mov, Dst: dst, A: a}) }

// Op3 emits a generic two-source instruction into dst.
func (f *FuncBuilder) Op3(op Op, dst Reg, a, b Operand) {
	f.emit(Instr{Op: op, Dst: dst, A: a, B: b})
}

// Op2 emits a generic one-source instruction into dst.
func (f *FuncBuilder) Op2(op Op, dst Reg, a Operand) {
	f.emit(Instr{Op: op, Dst: dst, A: a})
}

// Jmp emits an unconditional jump to l.
func (f *FuncBuilder) Jmp(l Label) {
	pc := f.emit(Instr{Op: Jmp, Target: int32(l)})
	f.patchPCs = append(f.patchPCs, pc)
}

// Bnz branches to l when cond != 0.
func (f *FuncBuilder) Bnz(cond Operand, l Label) {
	pc := f.emit(Instr{Op: Bnz, A: cond, Target: int32(l)})
	f.patchPCs = append(f.patchPCs, pc)
}

// Bz branches to l when cond == 0.
func (f *FuncBuilder) Bz(cond Operand, l Label) {
	pc := f.emit(Instr{Op: Bz, A: cond, Target: int32(l)})
	f.patchPCs = append(f.patchPCs, pc)
}

// Call emits a call to the named function, binding results to rets.
func (f *FuncBuilder) Call(name string, rets []Reg, args ...Operand) {
	pc := f.emit(Instr{Op: Call, Args: args, Rets: rets})
	f.callPCs = append(f.callPCs, pc)
	f.callNames = append(f.callNames, name)
}

// Ret returns the given values.
func (f *FuncBuilder) Ret(vals ...Operand) { f.emit(Instr{Op: Ret, Args: vals}) }

// Intrin emits an intrinsic call.
func (f *FuncBuilder) Intrin(id IntrinID, rets []Reg, args ...Operand) {
	f.emit(Instr{Op: Intrin, Target: int32(id), Args: args, Rets: rets})
}

// --- expression helpers (allocate a fresh destination) ----------------------

func (f *FuncBuilder) bin(op Op, a, b Operand) Reg {
	dst := f.NewReg()
	f.Op3(op, dst, a, b)
	return dst
}

// Bin emits a generic two-source instruction into a fresh register; for
// callers that select the opcode dynamically (e.g. program generators).
func (f *FuncBuilder) Bin(op Op, a, b Operand) Reg { return f.bin(op, a, b) }

func (f *FuncBuilder) un(op Op, a Operand) Reg {
	dst := f.NewReg()
	f.Op2(op, dst, a)
	return dst
}

// CI materializes an integer constant in a fresh register.
func (f *FuncBuilder) CI(v int64) Reg { dst := f.NewReg(); f.ConstI(dst, v); return dst }

// CF materializes a float constant in a fresh register.
func (f *FuncBuilder) CF(v float64) Reg { dst := f.NewReg(); f.ConstF(dst, v); return dst }

// Integer arithmetic expression helpers.
func (f *FuncBuilder) Add(a, b Operand) Reg  { return f.bin(Add, a, b) }
func (f *FuncBuilder) Sub(a, b Operand) Reg  { return f.bin(Sub, a, b) }
func (f *FuncBuilder) Mul(a, b Operand) Reg  { return f.bin(Mul, a, b) }
func (f *FuncBuilder) SDiv(a, b Operand) Reg { return f.bin(SDiv, a, b) }
func (f *FuncBuilder) SRem(a, b Operand) Reg { return f.bin(SRem, a, b) }
func (f *FuncBuilder) Shl(a, b Operand) Reg  { return f.bin(Shl, a, b) }
func (f *FuncBuilder) LShr(a, b Operand) Reg { return f.bin(LShr, a, b) }
func (f *FuncBuilder) AShr(a, b Operand) Reg { return f.bin(AShr, a, b) }
func (f *FuncBuilder) And(a, b Operand) Reg  { return f.bin(And, a, b) }
func (f *FuncBuilder) Or(a, b Operand) Reg   { return f.bin(Or, a, b) }
func (f *FuncBuilder) Xor(a, b Operand) Reg  { return f.bin(Xor, a, b) }

// Float arithmetic expression helpers.
func (f *FuncBuilder) FAdd(a, b Operand) Reg { return f.bin(FAdd, a, b) }
func (f *FuncBuilder) FSub(a, b Operand) Reg { return f.bin(FSub, a, b) }
func (f *FuncBuilder) FMul(a, b Operand) Reg { return f.bin(FMul, a, b) }
func (f *FuncBuilder) FDiv(a, b Operand) Reg { return f.bin(FDiv, a, b) }

// Conversions.
func (f *FuncBuilder) SIToFP(a Operand) Reg { return f.un(SIToFP, a) }
func (f *FuncBuilder) FPToSI(a Operand) Reg { return f.un(FPToSI, a) }

// Comparisons.
func (f *FuncBuilder) ICmp(op Op, a, b Operand) Reg { return f.bin(op, a, b) }
func (f *FuncBuilder) FCmp(op Op, a, b Operand) Reg { return f.bin(op, a, b) }

// Select returns cond != 0 ? a : b.
func (f *FuncBuilder) Select(cond, a, b Operand) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: Select, Dst: dst, A: cond, B: a, C: b})
	return dst
}

// Load reads mem[addr] into a fresh register.
func (f *FuncBuilder) Load(addr Operand) Reg { return f.un(Load, addr) }

// Store writes val to mem[addr].
func (f *FuncBuilder) Store(val, addr Operand) { f.emit(Instr{Op: Store, A: val, B: addr}) }

// FrameAddr returns the address of the stack local at the given frame
// offset in a fresh register.
func (f *FuncBuilder) FrameAddr(offset int) Reg {
	dst := f.NewReg()
	f.emit(Instr{Op: FrameAddr, Dst: dst, A: ImmI(int64(offset))})
	return dst
}

// Idx computes base + idx in a fresh register (word-addressed indexing).
func (f *FuncBuilder) Idx(base, idx Operand) Reg { return f.Add(base, idx) }

// Ld loads mem[base+idx].
func (f *FuncBuilder) Ld(base, idx Operand) Reg { return f.Load(R(f.Idx(base, idx))) }

// St stores val to mem[base+idx].
func (f *FuncBuilder) St(val, base, idx Operand) { f.Store(val, R(f.Idx(base, idx))) }

// --- intrinsic helpers -------------------------------------------------------

func (f *FuncBuilder) intrin1(id IntrinID, args ...Operand) Reg {
	dst := f.NewReg()
	f.Intrin(id, []Reg{dst}, args...)
	return dst
}

func (f *FuncBuilder) Sqrt(a Operand) Reg    { return f.intrin1(IntrinSqrt, a) }
func (f *FuncBuilder) Sin(a Operand) Reg     { return f.intrin1(IntrinSin, a) }
func (f *FuncBuilder) Cos(a Operand) Reg     { return f.intrin1(IntrinCos, a) }
func (f *FuncBuilder) Exp(a Operand) Reg     { return f.intrin1(IntrinExp, a) }
func (f *FuncBuilder) Log(a Operand) Reg     { return f.intrin1(IntrinLog, a) }
func (f *FuncBuilder) Fabs(a Operand) Reg    { return f.intrin1(IntrinFabs, a) }
func (f *FuncBuilder) Floor(a Operand) Reg   { return f.intrin1(IntrinFloor, a) }
func (f *FuncBuilder) Pow(a, b Operand) Reg  { return f.intrin1(IntrinPow, a, b) }
func (f *FuncBuilder) FMin(a, b Operand) Reg { return f.intrin1(IntrinFMin, a, b) }
func (f *FuncBuilder) FMax(a, b Operand) Reg { return f.intrin1(IntrinFMax, a, b) }

// Alloc bump-allocates size words on the heap and returns the base address.
func (f *FuncBuilder) Alloc(size Operand) Reg { return f.intrin1(IntrinAlloc, size) }

// OutputF appends a float to the run's observable output vector.
func (f *FuncBuilder) OutputF(v Operand) { f.Intrin(IntrinOutputF, nil, v) }

// OutputI appends an integer to the run's observable output vector.
func (f *FuncBuilder) OutputI(v Operand) { f.Intrin(IntrinOutputI, nil, v) }

// Iterations records the solver iteration count for PEX classification.
func (f *FuncBuilder) Iterations(v Operand) { f.Intrin(IntrinIterations, nil, v) }

// Tick marks a logical timestep boundary (id identifies the loop).
func (f *FuncBuilder) Tick(id Operand) { f.Intrin(IntrinCheckpointT, nil, id) }

// MPIRank returns the caller's rank.
func (f *FuncBuilder) MPIRank() Reg { return f.intrin1(IntrinMPIRank) }

// MPISize returns the number of ranks.
func (f *FuncBuilder) MPISize() Reg { return f.intrin1(IntrinMPISize) }

// MPISend sends count words starting at addr to rank dst with the tag.
func (f *FuncBuilder) MPISend(addr, count, dst, tag Operand) {
	f.Intrin(IntrinMPISend, nil, addr, count, dst, tag)
}

// MPIRecv receives count words into addr from rank src with the tag.
func (f *FuncBuilder) MPIRecv(addr, count, src, tag Operand) {
	f.Intrin(IntrinMPIRecv, nil, addr, count, src, tag)
}

// MPIAllreduceF reduces count float words across ranks.
func (f *FuncBuilder) MPIAllreduceF(sendAddr, recvAddr, count Operand, op ReduceOp) {
	f.Intrin(IntrinMPIAllreduceF, nil, sendAddr, recvAddr, count, ImmI(int64(op)))
}

// MPIAllreduceI reduces count integer words across ranks.
func (f *FuncBuilder) MPIAllreduceI(sendAddr, recvAddr, count Operand, op ReduceOp) {
	f.Intrin(IntrinMPIAllreduceI, nil, sendAddr, recvAddr, count, ImmI(int64(op)))
}

// MPIBarrier synchronizes all ranks.
func (f *FuncBuilder) MPIBarrier() { f.Intrin(IntrinMPIBarrier, nil) }

// MPIBcast broadcasts count words at addr from root to all ranks.
func (f *FuncBuilder) MPIBcast(addr, count, root Operand) {
	f.Intrin(IntrinMPIBcast, nil, addr, count, root)
}

// MPIAbort terminates the whole job (class C).
func (f *FuncBuilder) MPIAbort(code Operand) { f.Intrin(IntrinMPIAbort, nil, code) }

// --- structured control flow -------------------------------------------------

// For emits: for i := lo; i < hi; i++ { body() }. i must be a register the
// caller owns; lo and hi are evaluated once.
func (f *FuncBuilder) For(i Reg, lo, hi Operand, body func()) {
	// Evaluate hi once into a register if it is not already one.
	bound := hi
	if hi.Kind != KindReg {
		bound = R(f.NewReg())
		f.Mov(bound.Reg, hi)
	}
	f.Mov(i, lo)
	head := f.NewLabel()
	end := f.NewLabel()
	f.Bind(head)
	cond := f.ICmp(ICmpSLT, R(i), bound)
	f.Bz(R(cond), end)
	body()
	f.Op3(Add, i, R(i), ImmI(1))
	f.Jmp(head)
	f.Bind(end)
}

// While emits: for cond() != 0 { body() }. cond is re-evaluated each
// iteration and must emit its own instructions.
func (f *FuncBuilder) While(cond func() Operand, body func()) {
	head := f.NewLabel()
	end := f.NewLabel()
	f.Bind(head)
	c := cond()
	f.Bz(c, end)
	body()
	f.Jmp(head)
	f.Bind(end)
}

// If emits: if cond != 0 { then() }.
func (f *FuncBuilder) If(cond Operand, then func()) {
	end := f.NewLabel()
	f.Bz(cond, end)
	then()
	f.Bind(end)
}

// IfElse emits: if cond != 0 { then() } else { els() }.
func (f *FuncBuilder) IfElse(cond Operand, then, els func()) {
	elseL := f.NewLabel()
	end := f.NewLabel()
	f.Bz(cond, elseL)
	then()
	f.Jmp(end)
	f.Bind(elseL)
	els()
	f.Bind(end)
}

// finish resolves labels and call targets.
func (f *FuncBuilder) finish() error {
	for _, pc := range f.patchPCs {
		l := Label(f.fn.Code[pc].Target)
		if int(l) >= len(f.labelPos) || f.labelPos[l] < 0 {
			return fmt.Errorf("unbound label %d at pc %d", l, pc)
		}
		f.fn.Code[pc].Target = int32(f.labelPos[l])
	}
	for i, pc := range f.callPCs {
		name := f.callNames[i]
		idx, ok := f.b.prog.ByName[name]
		if !ok {
			return fmt.Errorf("call to undefined function %q at pc %d", name, pc)
		}
		f.fn.Code[pc].Target = int32(idx)
	}
	return nil
}
