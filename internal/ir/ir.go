// Package ir defines the intermediate representation that stands in for the
// LLVM IR of the paper. Applications are authored against this IR through
// the builder API; the FPM transformation pass (package transform) rewrites
// IR programs into the dual-chain instrumented form of the paper's Fig. 3,
// and the interpreter (package vm) executes either form.
//
// The IR is a register machine: each function owns a file of 64-bit virtual
// registers. Words are untyped at the register level; opcodes select integer
// or IEEE-754 float interpretation, exactly as hardware registers do. This
// matters for the fault model: a single-bit flip is defined on the 64-bit
// word regardless of how the program interprets it.
//
// Memory is word-addressed: address n names the n-th 64-bit word of the
// process address space. Address 0 is the null word and traps on access.
package ir

import "math"

// Reg names a virtual register within a function. Registers 0..NumParams-1
// hold the incoming arguments.
type Reg int32

// NoReg marks an unused register slot in an instruction.
const NoReg Reg = -1

// Op is an IR opcode.
type Op uint8

// Opcodes. Arithmetic opcodes interpret operands as signed 64-bit integers
// unless prefixed with F (IEEE-754 binary64).
const (
	Nop Op = iota

	// Data movement. ConstI/ConstF place the immediate in A.
	ConstI // Dst = imm
	ConstF // Dst = float imm
	Mov    // Dst = A

	// Integer arithmetic.
	Add  // Dst = A + B
	Sub  // Dst = A - B
	Mul  // Dst = A * B
	SDiv // Dst = A / B (signed; traps on divide by zero or overflow)
	SRem // Dst = A % B (signed; traps on divide by zero)
	Shl  // Dst = A << (B & 63)
	LShr // Dst = A >>> (B & 63) (logical)
	AShr // Dst = A >> (B & 63) (arithmetic)
	And  // Dst = A & B
	Or   // Dst = A | B
	Xor  // Dst = A ^ B

	// Floating-point arithmetic.
	FAdd // Dst = A + B
	FSub // Dst = A - B
	FMul // Dst = A * B
	FDiv // Dst = A / B

	// Conversions.
	SIToFP // Dst = float64(int64(A))
	FPToSI // Dst = int64(float64(A)) (truncating; traps on NaN/overflow)

	// Integer comparisons; result is 1 or 0.
	ICmpEQ
	ICmpNE
	ICmpSLT
	ICmpSLE
	ICmpSGT
	ICmpSGE

	// Floating-point comparisons; result is 1 or 0.
	FCmpEQ
	FCmpNE
	FCmpLT
	FCmpLE
	FCmpGT
	FCmpGE

	// Select: Dst = A != 0 ? B : C.
	Select

	// Memory.
	Load      // Dst = mem[A]
	Store     // mem[B] = A
	FrameAddr // Dst = frame pointer + imm(A): address of a stack local

	// Control flow. Target is the resolved instruction index.
	Jmp  // pc = Target
	Bnz  // if A != 0: pc = Target
	Bz   // if A == 0: pc = Target
	Call // call Funcs[Target](Args...) -> Rets
	Ret  // return Args...

	// Intrinsic call: Target is an IntrinID; Args/Rets as Call.
	Intrin

	// FPM instrumentation pseudo-ops, inserted by the transform pass.
	// They are never produced by the builder directly.
	FimInj   // Dst = maybeFlip(A): LLFI++ injection point for one operand use
	FpmFetch // Dst = pristineAt(mem address A): secondary-chain load
	FpmStore // store A(primary val) to C(primary addr); B/D are the pristine val/addr
)

const numOps = int(FpmStore) + 1

var opNames = [numOps]string{
	Nop: "nop", ConstI: "consti", ConstF: "constf", Mov: "mov",
	Add: "add", Sub: "sub", Mul: "mul", SDiv: "sdiv", SRem: "srem",
	Shl: "shl", LShr: "lshr", AShr: "ashr", And: "and", Or: "or", Xor: "xor",
	FAdd: "fadd", FSub: "fsub", FMul: "fmul", FDiv: "fdiv",
	SIToFP: "sitofp", FPToSI: "fptosi",
	ICmpEQ: "icmp.eq", ICmpNE: "icmp.ne", ICmpSLT: "icmp.slt",
	ICmpSLE: "icmp.sle", ICmpSGT: "icmp.sgt", ICmpSGE: "icmp.sge",
	FCmpEQ: "fcmp.eq", FCmpNE: "fcmp.ne", FCmpLT: "fcmp.lt",
	FCmpLE: "fcmp.le", FCmpGT: "fcmp.gt", FCmpGE: "fcmp.ge",
	Select: "select",
	Load:   "load", Store: "store", FrameAddr: "frameaddr",
	Jmp: "jmp", Bnz: "bnz", Bz: "bz", Call: "call", Ret: "ret",
	Intrin: "intrin",
	FimInj: "fim_inj", FpmFetch: "fpm_fetch", FpmStore: "fpm_store",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return "op?"
}

// Class groups opcodes for injection-site selection (paper §3.1: faults are
// injected into source registers of arithmetic and load/store operations).
type Class uint8

// Instruction classes.
const (
	ClassNone    Class = 0
	ClassArith   Class = 1 << iota // integer/float arithmetic and conversions
	ClassMem                       // load/store
	ClassCmp                       // comparisons and select
	ClassControl                   // branches, calls
)

// ClassOf returns the injection class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case Add, Sub, Mul, SDiv, SRem, Shl, LShr, AShr, And, Or, Xor,
		FAdd, FSub, FMul, FDiv, SIToFP, FPToSI:
		return ClassArith
	case Load, Store:
		return ClassMem
	case ICmpEQ, ICmpNE, ICmpSLT, ICmpSLE, ICmpSGT, ICmpSGE,
		FCmpEQ, FCmpNE, FCmpLT, FCmpLE, FCmpGT, FCmpGE, Select:
		return ClassCmp
	case Jmp, Bnz, Bz, Call, Ret:
		return ClassControl
	default:
		return ClassNone
	}
}

// OperandKind discriminates Operand.
type OperandKind uint8

// Operand kinds.
const (
	KindNone OperandKind = iota
	KindReg
	KindImm
)

// Operand is a register or an immediate 64-bit word.
type Operand struct {
	Kind OperandKind
	Reg  Reg
	Imm  uint64
}

// R constructs a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// ImmI constructs an integer immediate operand.
func ImmI(v int64) Operand { return Operand{Kind: KindImm, Imm: uint64(v)} }

// ImmF constructs a float immediate operand.
func ImmF(v float64) Operand { return Operand{Kind: KindImm, Imm: math.Float64bits(v)} }

// ImmBits constructs a raw-bits immediate operand.
func ImmBits(v uint64) Operand { return Operand{Kind: KindImm, Imm: v} }

// IsReg reports whether the operand is a register.
func (o Operand) IsReg() bool { return o.Kind == KindReg }

// Flags annotate instructions for the FPM machinery.
type Flags uint8

// Instruction flags.
const (
	// FlagInjectable marks a primary-chain instruction whose register
	// source operands are fault-injection sites.
	FlagInjectable Flags = 1 << iota
	// FlagSecondary marks instructions belonging to the replicated
	// secondary (pristine) chain; they are never injection sites and do
	// not count as application work.
	FlagSecondary
)

// Instr is one IR instruction. A, B, C, D are operand slots; most opcodes
// use at most A and B. FpmStore uses all four (primary value, pristine
// value, primary address, pristine address). Call-like opcodes use Args and
// Rets instead.
type Instr struct {
	Op         Op
	Flags      Flags
	Dst        Reg
	A, B, C, D Operand
	Target     int32 // jump pc, callee function index, or IntrinID
	Args       []Operand
	Rets       []Reg
}

// SrcOperands appends the instruction's source operand slots that are in use
// to dst and returns it (excluding Args; use for non-call instructions).
func (in *Instr) SrcOperands(dst []Operand) []Operand {
	for _, o := range [4]Operand{in.A, in.B, in.C, in.D} {
		if o.Kind != KindNone {
			dst = append(dst, o)
		}
	}
	return dst
}

// RegSources appends the registers read by this instruction to dst and
// returns it. Used by the FPM transform to place fim_inj sites and by the
// validator.
func (in *Instr) RegSources(dst []Reg) []Reg {
	switch in.Op {
	case Call, Intrin, Ret:
		for _, a := range in.Args {
			if a.IsReg() {
				dst = append(dst, a.Reg)
			}
		}
		return dst
	default:
		for _, o := range [4]Operand{in.A, in.B, in.C, in.D} {
			if o.IsReg() {
				dst = append(dst, o.Reg)
			}
		}
		return dst
	}
}

// HasDst reports whether the instruction writes Dst.
func (in *Instr) HasDst() bool {
	switch in.Op {
	case Store, Jmp, Bnz, Bz, Ret, Nop, FpmStore:
		return false
	case Call, Intrin:
		return false // destinations are in Rets
	default:
		return in.Dst != NoReg
	}
}

// IntrinID identifies a VM intrinsic. Intrinsics are the IR's system
// interface: math library calls (replicated by the FPM transform as pure
// functions), memory allocation, observable output, and the MPI surface.
type IntrinID int32

// Intrinsic identifiers.
const (
	IntrinNone IntrinID = iota

	// Pure math: one float argument, one float result (except Pow: two
	// arguments; Min/Max: two arguments).
	IntrinSqrt
	IntrinSin
	IntrinCos
	IntrinExp
	IntrinLog
	IntrinFabs
	IntrinFloor
	IntrinPow
	IntrinFMin
	IntrinFMax

	// Memory: Alloc(sizeWords) -> base address. Bump allocator; traps when
	// the heap meets the stack.
	IntrinAlloc

	// Observability (side effects; never replicated).
	IntrinOutputF     // OutputF(x): append x to the run's output vector
	IntrinOutputI     // OutputI(n): append float64(n) to the output vector
	IntrinIterations  // Iterations(n): record solver iteration count
	IntrinPrintF      // debug print
	IntrinPrintI      // debug print
	IntrinCheckpointT // CheckpointTick(id): mark a logical timestep boundary

	// MPI (side effects; the runtime handles contamination piggyback).
	IntrinMPIRank       // () -> rank
	IntrinMPISize       // () -> nranks
	IntrinMPISend       // (addr, count, dst, tag)
	IntrinMPIRecv       // (addr, count, src, tag)
	IntrinMPIAllreduceF // (sendAddr, recvAddr, count, op)
	IntrinMPIAllreduceI // (sendAddr, recvAddr, count, op)
	IntrinMPIBarrier    // ()
	IntrinMPIBcast      // (addr, count, root)
	IntrinMPIAbort      // (code): terminates the whole job

	numIntrins
)

// NumIntrins is the number of defined intrinsics.
const NumIntrins = int(numIntrins)

var intrinNames = [NumIntrins]string{
	IntrinSqrt: "sqrt", IntrinSin: "sin", IntrinCos: "cos", IntrinExp: "exp",
	IntrinLog: "log", IntrinFabs: "fabs", IntrinFloor: "floor",
	IntrinPow: "pow", IntrinFMin: "fmin", IntrinFMax: "fmax",
	IntrinAlloc:   "alloc",
	IntrinOutputF: "output.f", IntrinOutputI: "output.i",
	IntrinIterations: "iterations",
	IntrinPrintF:     "print.f", IntrinPrintI: "print.i",
	IntrinCheckpointT: "tick",
	IntrinMPIRank:     "mpi.rank", IntrinMPISize: "mpi.size",
	IntrinMPISend: "mpi.send", IntrinMPIRecv: "mpi.recv",
	IntrinMPIAllreduceF: "mpi.allreduce.f", IntrinMPIAllreduceI: "mpi.allreduce.i",
	IntrinMPIBarrier: "mpi.barrier", IntrinMPIBcast: "mpi.bcast",
	IntrinMPIAbort: "mpi.abort",
}

// String returns the intrinsic's name.
func (id IntrinID) String() string {
	if int(id) < len(intrinNames) && intrinNames[id] != "" {
		return intrinNames[id]
	}
	return "intrin?"
}

// IntrinPure reports whether the intrinsic is a pure function of its
// arguments. Pure intrinsics are replicated by the FPM transform (executed
// once with potentially-corrupted and once with pristine inputs, paper
// §3.2 "Function Calls"); impure ones are executed only on the primary
// chain to avoid duplicated side effects.
func IntrinPure(id IntrinID) bool {
	switch id {
	case IntrinSqrt, IntrinSin, IntrinCos, IntrinExp, IntrinLog,
		IntrinFabs, IntrinFloor, IntrinPow, IntrinFMin, IntrinFMax:
		return true
	default:
		return false
	}
}

// ReduceOp selects the combining operator of an Allreduce.
type ReduceOp int64

// Reduction operators.
const (
	ReduceSum ReduceOp = iota
	ReduceMin
	ReduceMax
)
