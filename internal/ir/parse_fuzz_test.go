package ir

import (
	"strings"
	"testing"
)

// FuzzParse pins the IR assembler's robustness contract: ParseProgram must
// never panic on arbitrary text — it returns a program or an error. On the
// happy path it additionally checks the parse/disassemble round trip keeps
// parsing, since campaign tooling stores programs as text.
func FuzzParse(f *testing.F) {
	seeds := []string{
		sampleSrc,
		"global a size=4 init=1,2,3,4\nfunc main(params=0 rets=0):\n  r0 = consti #5\n  ret\n",
		"func main(params=0 rets=0):\nL:  r0 = add r0, #1\n  bnz r0, @L\n  ret\n",
		"; comment\nglobal g size=2\nfunc main(params=0 rets=0 frame=3):\n" +
			"  r1 = frameaddr #0\n  store #7 -> [r1]\n  r2 = load [r1]\n  ret\n",
		"func main(params=0 rets=0):\n  r0 = constf #2.5\n  r1 = select r0 ? r0 : r0\n" +
			"  r2 = fim_inj(r1)\n  _ = sqrt(r0)\n  ret r2\n",
		"func f(params=2 rets=1):\n  r2 = mul r0, r1\n  ret r2\n" +
			"func main(params=0 rets=0):\n  r0, r1 = call f(#3, #4)\n  ret\n",
		"global a size=1 init=0x1p3",
		"func main(params=999999999 rets=0):\n  ret\n",
		"func main(params=0 rets=0):\n  r99999999 = consti #1\n  ret\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := ParseProgram(src)
		if err != nil {
			return
		}
		if prog == nil {
			t.Fatal("ParseProgram returned nil program and nil error")
		}
		// A program that parsed must disassemble, and the disassembly must
		// itself be parseable (possibly to a different-but-valid program:
		// labels renumber).
		text := DisassembleProgram(prog)
		if _, err := ParseProgram(text); err != nil {
			t.Fatalf("round trip failed: %v\nsource:\n%s\ndisassembly:\n%s",
				err, src, text)
		}
		_ = strings.TrimSpace(text)
	})
}
