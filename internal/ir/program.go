package ir

import (
	"fmt"
	"sync/atomic"
)

// Func is one IR function.
type Func struct {
	Name      string
	NumParams int // parameters arrive in registers 0..NumParams-1
	NumRets   int // number of values returned by Ret
	NumRegs   int // size of the virtual register file
	Frame     int // stack frame size in words (locals addressed by FrameAddr)
	// PairedRegs, when non-zero, declares that registers [0, PairedRegs)
	// follow the transform package's dual-chain layout: even register 2r
	// is the primary twin and odd register 2r+1 is its pristine shadow.
	// Registers at and above PairedRegs (injection temporaries) have no
	// shadow twin. Set only by transform.Instrument; zero means no pairing
	// is known, which disables interpreter fast paths that rely on it.
	PairedRegs int
	Code       []Instr
}

// Global is a named region of the global data segment.
type Global struct {
	Name string
	Base int64 // first word address
	Size int64 // size in words
	Init []uint64
}

// Program is a complete IR program: functions, a global segment layout and
// an entry point.
type Program struct {
	Funcs   []*Func
	ByName  map[string]int
	Globals []Global
	// GlobalWords is the total extent of the global segment; globals
	// occupy word addresses [1, 1+GlobalWords).
	GlobalWords int64
	Entry       int // index of the entry function

	// exec caches the interpreter's pre-decoded executable form of this
	// program, stored as an opaque value so the IR stays independent of
	// the VM. Tying the cache to the Program gives it the right lifetime:
	// it is garbage-collected with the program instead of accumulating in
	// a global registry across the many programs a long-lived daemon
	// instruments.
	exec atomic.Value
}

// Exec returns the cached executable form installed by StoreExec, or nil
// before the first decode. Safe for concurrent use.
func (p *Program) Exec() any { return p.exec.Load() }

// StoreExec installs the executable form. Racing installs are benign:
// decoding is a pure function of the program, so every stored value is
// equivalent. The caller must not mutate Funcs after the first execution.
func (p *Program) StoreExec(v any) { p.exec.Store(v) }

// FuncNamed returns the function with the given name, or nil.
func (p *Program) FuncNamed(name string) *Func {
	if i, ok := p.ByName[name]; ok {
		return p.Funcs[i]
	}
	return nil
}

// GlobalNamed returns the global with the given name and whether it exists.
func (p *Program) GlobalNamed(name string) (Global, bool) {
	for _, g := range p.Globals {
		if g.Name == name {
			return g, true
		}
	}
	return Global{}, false
}

// Validate checks structural invariants of the program: register indices in
// range, jump targets within code, callee indices valid, argument counts
// matching callee signatures. The VM relies on these invariants, so
// programs must validate before execution.
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("ir: program has no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("ir: entry index %d out of range", p.Entry)
	}
	for fi, f := range p.Funcs {
		if err := p.validateFunc(f); err != nil {
			return fmt.Errorf("ir: func %q (#%d): %w", f.Name, fi, err)
		}
	}
	return nil
}

func (p *Program) validateFunc(f *Func) error {
	if f.NumParams > f.NumRegs {
		return fmt.Errorf("NumParams %d exceeds NumRegs %d", f.NumParams, f.NumRegs)
	}
	checkReg := func(pc int, r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("pc %d: %s register r%d out of range [0,%d)", pc, what, r, f.NumRegs)
		}
		return nil
	}
	checkOperand := func(pc int, o Operand, what string) error {
		if o.Kind == KindReg {
			return checkReg(pc, o.Reg, what)
		}
		return nil
	}
	for pc := range f.Code {
		in := &f.Code[pc]
		if in.HasDst() {
			if err := checkReg(pc, in.Dst, "dst"); err != nil {
				return err
			}
		}
		for _, o := range [4]Operand{in.A, in.B, in.C, in.D} {
			if err := checkOperand(pc, o, "src"); err != nil {
				return err
			}
		}
		for _, a := range in.Args {
			if err := checkOperand(pc, a, "arg"); err != nil {
				return err
			}
		}
		for _, r := range in.Rets {
			if err := checkReg(pc, r, "ret"); err != nil {
				return err
			}
		}
		switch in.Op {
		case Jmp, Bnz, Bz:
			if in.Target < 0 || int(in.Target) >= len(f.Code) {
				return fmt.Errorf("pc %d: jump target %d out of range", pc, in.Target)
			}
		case Call:
			if in.Target < 0 || int(in.Target) >= len(p.Funcs) {
				return fmt.Errorf("pc %d: callee index %d out of range", pc, in.Target)
			}
			callee := p.Funcs[in.Target]
			if len(in.Args) != callee.NumParams {
				return fmt.Errorf("pc %d: call %q with %d args, want %d",
					pc, callee.Name, len(in.Args), callee.NumParams)
			}
			if len(in.Rets) > callee.NumRets {
				return fmt.Errorf("pc %d: call %q binds %d results, callee returns %d",
					pc, callee.Name, len(in.Rets), callee.NumRets)
			}
		case Ret:
			if len(in.Args) != f.NumRets {
				return fmt.Errorf("pc %d: ret with %d values, function declares %d",
					pc, len(in.Args), f.NumRets)
			}
		case Intrin:
			if in.Target <= 0 || int(in.Target) >= NumIntrins {
				return fmt.Errorf("pc %d: unknown intrinsic %d", pc, in.Target)
			}
		}
	}
	if len(f.Code) == 0 {
		return fmt.Errorf("empty function body")
	}
	last := f.Code[len(f.Code)-1]
	if last.Op != Ret && last.Op != Jmp {
		return fmt.Errorf("function does not end in ret or jmp")
	}
	return nil
}

// Stats summarizes the static composition of a program.
type Stats struct {
	Funcs        int
	Instructions int
	ByClass      map[Class]int
	GlobalWords  int64
}

// CollectStats computes static program statistics.
func (p *Program) CollectStats() Stats {
	s := Stats{Funcs: len(p.Funcs), ByClass: make(map[Class]int), GlobalWords: p.GlobalWords}
	for _, f := range p.Funcs {
		s.Instructions += len(f.Code)
		for i := range f.Code {
			s.ByClass[ClassOf(f.Code[i].Op)]++
		}
	}
	return s
}
